"""Deterministic fault injection for the durability layer.

Crash-safety claims are only as good as the crashes they were tested
against, so every failure mode the WAL/snapshot machinery defends against
is injectable on a *deterministic schedule*: the chaos tests enumerate (or
seed-generate) exact fault points — "the 3rd WAL record write tears after
17 bytes", "the 2nd fsync fails", "crash between snapshot rename and log
reset" — run the workload until the fault fires, then recover and assert
bit-identity against a fresh build on the acknowledged rows.

Pieces:

* :class:`SimulatedCrash` — raised at a scheduled crash point.  It
  subclasses ``BaseException`` deliberately: process death does not stop
  for ``except Exception`` handlers, so neither does its simulation.
* :class:`FaultSchedule` — maps labeled fault points (``"wal_write"``,
  ``"wal_sync"``, ``"snapshot_rename"`` …) and per-label occurrence
  numbers to actions: crash, fail an fsync, or tear a write after k bytes.
  Durability code calls :meth:`FaultSchedule.at` at each point; production
  runs pass ``faults=None`` and pay one ``is None`` check.
* :class:`FlakyProxy` — a frame-aware TCP proxy between a client and the
  serve port that drops or delays scheduled *responses*: the server
  applies the append, the ack is lost, and the client's idempotent retry
  must be deduplicated to exactly-once.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field


class SimulatedCrash(BaseException):
    """The process "dies" here.

    A ``BaseException`` so ordinary ``except Exception`` recovery paths
    (request error isolation, per-batch fallbacks) cannot swallow it — just
    as they could not swallow a SIGKILL.
    """


@dataclass(frozen=True)
class FaultAction:
    """What a fault point should do this time around."""

    crash: bool = False
    fail_sync: bool = False
    keep_bytes: int | None = None

    @property
    def benign(self) -> bool:
        return not self.crash and not self.fail_sync and self.keep_bytes is None


_BENIGN = FaultAction()


@dataclass
class FaultSchedule:
    """A deterministic schedule of fault-point actions.

    Parameters
    ----------
    crash_points:
        ``(label, occurrence)`` pairs at which :class:`SimulatedCrash` is
        raised (occurrences count from 0, per label).
    sync_failures:
        ``(label, occurrence)`` pairs at which an fsync-style point raises
        ``OSError`` instead of succeeding.
    torn_writes:
        ``{(label, occurrence): keep}`` — the write at that point persists
        only a prefix, then crashes.  ``keep`` is a byte count (``int``) or
        a fraction of the record (``float`` in ``[0, 1)``).
    """

    crash_points: frozenset[tuple[str, int]] = frozenset()
    sync_failures: frozenset[tuple[str, int]] = frozenset()
    torn_writes: dict[tuple[str, int], float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)
    #: Fault points actually fired, in order — lets tests assert the
    #: scheduled fault was reached at all.
    fired: list[tuple[str, int, FaultAction]] = field(default_factory=list)

    def at(self, label: str, size: int | None = None) -> FaultAction:
        """The action for this occurrence of fault point ``label``."""
        occurrence = self._counts.get(label, 0)
        self._counts[label] = occurrence + 1
        point = (label, occurrence)
        keep = self.torn_writes.get(point)
        keep_bytes: int | None = None
        if keep is not None:
            if isinstance(keep, float):
                keep_bytes = int(keep * size) if size is not None else 0
            else:
                keep_bytes = int(keep)
            if size is not None:
                keep_bytes = max(0, min(keep_bytes, max(size - 1, 0)))
        action = FaultAction(
            crash=point in self.crash_points,
            fail_sync=point in self.sync_failures,
            keep_bytes=keep_bytes,
        )
        if not action.benign:
            self.fired.append((label, occurrence, action))
        return action if not action.benign else _BENIGN

    @classmethod
    def crash_at(cls, label: str, occurrence: int = 0) -> "FaultSchedule":
        """A schedule with a single crash point."""
        return cls(crash_points=frozenset({(label, occurrence)}))

    @classmethod
    def seeded(
        cls,
        seed: int,
        labels: tuple[str, ...] = ("wal_write", "wal_record", "wal_sync", "snapshot_rename", "snapshot_reset"),
        horizon: int = 40,
    ) -> "FaultSchedule":
        """A pseudo-random single-crash schedule, reproducible from ``seed``.

        Picks one fault point uniformly over ``labels × range(horizon)``
        and, for write points, sometimes makes it a torn write instead of a
        clean boundary crash.  The chaos tests sweep seeds; every seed is a
        distinct deterministic crash scenario.
        """
        rng = random.Random(seed)
        label = rng.choice(labels)
        occurrence = rng.randrange(horizon)
        if label in ("wal_write", "snapshot_write") and rng.random() < 0.5:
            return cls(torn_writes={(label, occurrence): rng.random()})
        if label == "wal_sync" and rng.random() < 0.5:
            return cls(sync_failures=frozenset({(label, occurrence)}))
        return cls(crash_points=frozenset({(label, occurrence)}))


_HEADER = struct.Struct(">Q")  # serve-protocol frame header (length only)


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


class FlakyProxy:
    """A frame-aware TCP proxy that loses or delays scheduled responses.

    Sits between a :class:`~repro.serve.client.ServeClient` and a
    :class:`~repro.serve.server.ViolationServer`; requests pass through
    verbatim, responses are counted globally (across reconnects) and the
    ``n``-th response can be dropped — the proxy closes the client side
    *after* the server has committed, simulating an ack lost to the
    network or to a server restart — or delayed past the client's read
    timeout.  Deterministic: no randomness, the schedule is explicit.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        drop_responses: frozenset[int] | set[int] = frozenset(),
        delay_responses: dict[int, float] | None = None,
    ) -> None:
        self._upstream = upstream
        self._drop = frozenset(drop_responses)
        self._delay = dict(delay_responses or {})
        self._response_index = 0
        self._index_lock = threading.Lock()
        self._closed = False
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address: tuple[str, int] = self._listener.getsockname()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            server = socket.create_connection(self._upstream, timeout=30.0)
        except OSError:
            client.close()
            return
        stop = threading.Event()

        def pump_requests() -> None:
            try:
                while not stop.is_set():
                    data = client.recv(1 << 16)
                    if not data:
                        break
                    server.sendall(data)
            except OSError:
                pass
            finally:
                stop.set()
                try:
                    server.shutdown(socket.SHUT_WR)
                except OSError:
                    pass

        uplink = threading.Thread(target=pump_requests, daemon=True)
        uplink.start()
        try:
            while not stop.is_set():
                header = _read_exact(server, _HEADER.size)
                payload = _read_exact(server, _HEADER.unpack(header)[0])
                with self._index_lock:
                    index = self._response_index
                    self._response_index += 1
                if index in self._drop:
                    # The server already committed; the ack dies here.
                    break
                delay = self._delay.get(index)
                if delay:
                    time.sleep(delay)
                client.sendall(header + payload)
        except (ConnectionError, OSError):
            pass
        finally:
            stop.set()
            for sock in (client, server):
                try:
                    sock.close()
                except OSError:
                    pass

    @property
    def responses_seen(self) -> int:
        with self._index_lock:
            return self._response_index

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=5.0)
