"""Distributed tracing overhead — traced vs untraced cluster folds.

Not a paper figure: this benchmark enforces the cross-wire half of the
observability overhead budget.  It stands up one 2-worker *socket*
cluster (real ``python -m repro.cluster.worker`` subprocesses over
localhost TCP) and folds the same sharded evidence workload repeatedly,
alternating fold by fold between

* **untraced** — no ambient span: 3-tuple task frames, no ``task_span``
  frames, exactly the pre-tracing wire protocol, and
* **traced** — a :class:`~repro.obs.spans.Span` ambient around the
  submit: every task frame carries the trace context, every worker ships
  back a ``task_span`` child, and the coordinator stitches the tree.

Interleaving makes background load and clock drift hit both sides of the
ratio equally; untimed warm-up folds absorb context broadcast and
allocator effects.  The compared statistic is p50 fold latency, and the
budget enforced by ``--require-overhead`` is

* traced fold p50 <= ``MAX_TRACE_OVERHEAD`` x untraced fold p50.

The traced side also records per-fold stitching completeness (children
per submitted task) so a silent trace-drop regression shows up in the
JSON artifact even while the latency gate passes.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_cluster.py \
        [--json BENCH_obs_cluster.json] [--rows 2000] [--require-overhead] \
        [--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import (
    LocalCluster,
    TileFoldContext,
    merge_partials_tree,
    shard_tasks,
)
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.engine.kernel import TileKernel
from repro.engine.scheduler import TileScheduler
from repro.obs import Span
from repro.obs import spans as obs_spans

#: Rows of the benchmark relation (the n=2000 point the gate is set at).
BENCH_ROWS = 2000

#: Measured folds per configuration.
FOLD_REPS = 15

#: Untimed folds per configuration before the measured loop.
WARMUP_REPS = 2

#: Traced/untraced fold p50 ratio bound enforced by ``--require-overhead``.
MAX_TRACE_OVERHEAD = 1.15

#: Socket workers in the benchmark cluster.
N_WORKERS = 2

#: Rows per scheduler tile block (sized so a 2000-row relation shards
#: into enough tasks to keep both workers busy).
TILE_ROWS = 200

#: Shard tasks requested per fold.
N_TASKS = 8


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) of ``values`` by nearest-rank."""
    ranked = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ranked)) - 1)
    return ranked[rank]


def run_cluster_trace_benchmark(n_rows: int, reps: int) -> dict[str, object]:
    """Interleaved traced/untraced folds on one cluster; returns the payload."""
    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    kernel = TileKernel.from_relation(relation, space, include_participation=False)
    tiles = TileScheduler(relation.n_rows, tile_rows=TILE_ROWS).tiles()
    tasks, weights = shard_tasks(tiles, N_TASKS)
    context = TileFoldContext(kernel, tiles)

    latencies: dict[str, list[float]] = {"untraced": [], "traced": []}
    children_per_fold: list[int] = []
    with LocalCluster(N_WORKERS, transport="socket") as cluster:
        reference = None
        for rep in range(-WARMUP_REPS, reps):
            # Alternate which configuration goes first within the pair.
            order = ("untraced", "traced") if rep % 2 == 0 else ("traced", "untraced")
            for mode in order:
                span = Span("bench_fold", op="fold") if mode == "traced" else None
                started = time.perf_counter()
                with obs_spans.use(span):
                    results = cluster.submit(context, tasks, weights)
                elapsed = time.perf_counter() - started
                if rep >= 0:
                    latencies[mode].append(elapsed)
                    if span is not None:
                        children_per_fold.append(len(span.children))
                evidence = merge_partials_tree(results).finalize(space)
                if reference is None:
                    reference = evidence
        snapshots = cluster.coordinator.pull_metrics()

    untraced_p50 = percentile(latencies["untraced"], 50)
    traced_p50 = percentile(latencies["traced"], 50)
    return {
        "benchmark": "obs_cluster",
        "n_rows": n_rows,
        "n_workers": N_WORKERS,
        "n_tasks": len(tasks),
        "n_tiles": len(tiles),
        "fold_reps": reps,
        "warmup_reps": WARMUP_REPS,
        "max_trace_overhead": MAX_TRACE_OVERHEAD,
        "untraced": {
            "fold_p50_ms": untraced_p50 * 1e3,
            "fold_p99_ms": percentile(latencies["untraced"], 99) * 1e3,
        },
        "traced": {
            "fold_p50_ms": traced_p50 * 1e3,
            "fold_p99_ms": percentile(latencies["traced"], 99) * 1e3,
            "min_children_per_fold": min(children_per_fold),
            "max_children_per_fold": max(children_per_fold),
        },
        "trace_overhead": traced_p50 / untraced_p50,
        "federated_workers": len(snapshots),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--reps", type=int, default=FOLD_REPS)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI (600 rows, few reps)")
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-overhead", action="store_true",
                        help=f"fail unless the traced/untraced fold p50 "
                             f"ratio stays under {MAX_TRACE_OVERHEAD}x")
    args = parser.parse_args()
    if args.smoke:
        args.rows = min(args.rows, 600)
        args.reps = min(args.reps, 6)

    payload = run_cluster_trace_benchmark(args.rows, args.reps)

    traced, untraced = payload["traced"], payload["untraced"]
    print(f"Distributed tracing overhead at {payload['n_rows']} rows "
          f"({payload['n_workers']} socket workers, {payload['n_tasks']} "
          f"tasks/fold, {payload['fold_reps']} folds/config):")
    print(f"  fold p50 {untraced['fold_p50_ms']:8.3f} ms untraced")
    print(f"  fold p50 {traced['fold_p50_ms']:8.3f} ms traced "
          f"({payload['trace_overhead']:.3f}x)")
    print(f"  stitched children/fold: {traced['min_children_per_fold']}"
          f"..{traced['max_children_per_fold']} "
          f"(tasks/fold: {payload['n_tasks']})")
    print(f"  federated worker snapshots: {payload['federated_workers']}")

    failures = []
    if payload["trace_overhead"] > MAX_TRACE_OVERHEAD:
        failures.append(
            f"trace overhead {payload['trace_overhead']:.3f}x exceeds "
            f"{MAX_TRACE_OVERHEAD}x"
        )
    if traced["min_children_per_fold"] < 1:
        failures.append("a traced fold stitched zero worker child spans")
    for message in failures:
        stream = sys.stderr if args.require_overhead else sys.stdout
        prefix = "ERROR" if args.require_overhead else "WARNING"
        print(f"{prefix}: {message}", file=stream)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 1 if (failures and args.require_overhead) else 0


if __name__ == "__main__":
    sys.exit(main())
