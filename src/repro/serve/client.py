"""Synchronous client of the violation-serving server.

:class:`ServeClient` is the one blocking client everything shares — tests,
benchmarks, examples, and the CI smoke driver — instead of each
hand-rolling socket framing.  One instance owns one connection; calls are
request/response in order (a lock serializes concurrent callers, so an
instance is thread-safe but not pipelined — open one client per thread for
throughput).

Typed helpers cover every server op; :meth:`request` is the escape hatch
for raw frames.  A server-side failure raises
:class:`~repro.serve.protocol.ServeError` carrying the error code.

Fault tolerance: connections are lazy (a dead server at construction time
surfaces on the first request, not in ``__init__`` when ``retries`` is
set), a read that exceeds ``timeout`` raises
:class:`~repro.serve.protocol.ServeTimeout` and poisons the connection
(a late response would desynchronize request ids), and ``retries`` makes
*idempotent* requests survive a server restart: the client reconnects
with exponential backoff and resends.  ``append`` joins the idempotent
set by carrying a ``request_key`` — the server's dedup window applies a
retried append exactly once even if the original acknowledgment was lost.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
import uuid
from typing import Iterable, Mapping, Sequence

from repro.obs.spans import new_trace_id
from repro.serve import protocol
from repro.serve.protocol import ServeError, ServeTimeout

Row = Mapping[str, object]


class ServeClient:
    """Blocking JSON-frame client for one server connection.

    Parameters
    ----------
    host, port:
        The server's listen address.
    timeout:
        Socket timeout for every response read (seconds; ``None`` blocks
        forever — remines on big stores can be slow).  Expiry raises
        :class:`ServeTimeout` and closes the connection.
    connect_timeout:
        Timeout for establishing the connection; defaults to ``timeout``.
    retries:
        How many times an idempotent request is retried after a
        connection failure (``0`` = fail fast, the historical behavior).
        Non-idempotent raw :meth:`request` calls never retry.
    retry_backoff:
        Base sleep between retries (seconds); doubles per attempt.
    max_frame_bytes:
        Refusal bound for response frames (matches the server's).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        connect_timeout: float | None = None,
        retries: int = 0,
        retry_backoff: float = 0.2,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_timeout = timeout if connect_timeout is None else connect_timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = float(retry_backoff)
        self.max_frame_bytes = int(max_frame_bytes)
        self._sock: socket.socket | None = None
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        self.reconnects = 0
        if self.retries == 0:
            # Historical contract: a non-retrying client fails at
            # construction when the server is unreachable.
            with self._lock:
                self._connect()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        """Ensure a live socket (lock held)."""
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except socket.timeout as error:
            raise ServeTimeout(
                f"connect to {self.host}:{self.port} timed out "
                f"after {self.connect_timeout}s"
            ) from error
        sock.settimeout(self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        return sock

    def _drop_connection(self) -> None:
        """Poison the current socket (lock held); next request reconnects."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, op: str, fields: Mapping[str, object]) -> dict[str, object]:
        """One send/receive on the live connection (lock held)."""
        sock = self._connect()
        request_id = next(self._ids)
        try:
            sock.sendall(
                protocol.encode_frame({"id": request_id, "op": op, **fields})
            )
            response = protocol.read_frame(sock, self.max_frame_bytes)
        except socket.timeout as error:
            # The response may still arrive later; reading it would answer
            # the *wrong* request.  The connection is unusable — drop it.
            self._drop_connection()
            raise ServeTimeout(
                f"no response to {op!r} within {self.timeout}s"
            ) from error
        except (ConnectionError, OSError):
            self._drop_connection()
            raise
        if response.get("id") not in (request_id, None):
            raise protocol.ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return response

    def request(
        self, op: str, _idempotent: bool = False, **fields: object
    ) -> dict[str, object]:
        """Send one request and wait for its response.

        Returns the success frame (minus the envelope); raises
        :class:`ServeError` on an error frame, :class:`ServeTimeout` on a
        read timeout, and :class:`ConnectionError` when the link dies.
        With ``retries`` set and ``_idempotent=True`` (every typed read
        op, plus keyed appends), connection failures trigger reconnect +
        resend with exponential backoff instead of surfacing immediately.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        attempts = 1 + (self.retries if _idempotent else 0)
        failure: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                # time.sleep outside the lock would allow id interleaving;
                # inside it, other threads simply queue behind the retry.
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                self.reconnects += 1
            try:
                with self._lock:
                    response = self._roundtrip(op, fields)
                break
            except (ConnectionError, OSError) as error:
                failure = error
        else:
            assert failure is not None
            raise failure
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("code", protocol.INTERNAL)),
                str(error.get("message", "unspecified server error")),
            )
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            if self._sock is not None:
                try:
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                self._sock.close()
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Typed ops
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, object]:
        """Server liveness, protocol version, and registered store names."""
        return self.request("ping", _idempotent=True)

    def create_store(
        self,
        store: str,
        rows: Iterable[Row],
        types: Mapping[str, str] | None = None,
    ) -> dict[str, object]:
        """Register a tenant store seeded with ``rows``."""
        fields: dict[str, object] = {"store": store, "rows": list(rows)}
        if types is not None:
            fields["types"] = dict(types)
        return self.request("create_store", **fields)

    def drop_store(self, store: str) -> dict[str, object]:
        """Drain and remove a tenant store."""
        return self.request("drop_store", store=store)

    def append(
        self,
        store: str,
        rows: Iterable[Row],
        request_key: str | None = None,
        trace: "bool | str" = False,
    ) -> dict[str, object]:
        """Stream a batch of rows into a store (coalesced server-side).

        Every append carries a ``request_key`` (auto-generated when not
        given): the server's dedup window makes a retry of the same key —
        lost acknowledgment, server restart — apply exactly once and
        return the original result, so keyed appends are safely
        idempotent and participate in the client's retry loop.

        ``trace=True`` (or a caller-chosen trace-id string) asks the server
        to decompose this request's latency; the response then carries a
        ``"trace"`` object with per-segment seconds (queue, fold,
        journal_fsync, commit, ack).
        """
        if request_key is None:
            request_key = uuid.uuid4().hex
        fields: dict[str, object] = {
            "store": store, "rows": list(rows), "request_key": request_key,
        }
        if trace:
            fields["trace"] = trace if isinstance(trace, str) else new_trace_id()
        return self.request("append", _idempotent=True, **fields)

    def remine(
        self,
        store: str,
        epsilon: float,
        function: str = "f1",
        max_dc_size: int | None = None,
        limit: int | None = None,
        trace: "bool | str" = False,
    ) -> dict[str, object]:
        """Mine ADCs on the store's current state and install them.

        The response's ``"enumeration"`` object carries the run's search
        statistics (recursive calls, prunes, outputs, nodes/second);
        ``trace`` additionally requests the finalize/enumerate latency
        split under ``"trace"``.
        """
        fields: dict[str, object] = {
            "store": store, "epsilon": epsilon, "function": function,
        }
        if max_dc_size is not None:
            fields["max_dc_size"] = max_dc_size
        if limit is not None:
            fields["limit"] = limit
        if trace:
            fields["trace"] = trace if isinstance(trace, str) else new_trace_id()
        return self.request("remine", **fields)

    def declare(
        self,
        store: str,
        constraints: Sequence[Sequence[Mapping[str, object]]],
        epsilon: float = 0.01,
    ) -> dict[str, object]:
        """Install hand-written DCs (lists of predicate specs)."""
        return self.request(
            "declare", store=store,
            constraints=[list(spec) for spec in constraints],
            epsilon=epsilon,
        )

    def violations(
        self, store: str, dc: int, mode: str = "counters"
    ) -> dict[str, object]:
        """One DC's violating-pair count/rate (push counters by default)."""
        return self.request(
            "violations", _idempotent=True, store=store, dc=dc, mode=mode
        )

    def report(self, store: str) -> dict[str, object]:
        """All served DCs' counts/rates off one consistent counter snapshot."""
        return self.request("report", _idempotent=True, store=store)

    def check_batch(self, store: str, rows: Iterable[Row]) -> dict[str, object]:
        """Per-row epsilon admission verdicts for an incoming batch."""
        return self.request(
            "check_batch", _idempotent=True, store=store, rows=list(rows)
        )

    def violating_pairs(
        self, store: str, dc: int, limit: int = 10_000
    ) -> dict[str, object]:
        """The actual violating ``(t, t')`` pairs of one DC (tile replay)."""
        return self.request(
            "violating_pairs", _idempotent=True, store=store, dc=dc, limit=limit
        )

    def tuple_scores(
        self, store: str, dc: int, ranking: bool = False
    ) -> dict[str, object]:
        """Per-tuple violation scores (and optionally the repair ranking)."""
        return self.request(
            "tuple_scores", _idempotent=True, store=store, dc=dc, ranking=ranking
        )

    def set_epsilon(self, store: str, epsilon: float) -> dict[str, object]:
        """Change the store's served epsilon (journaled when durable)."""
        return self.request(
            "set_epsilon", _idempotent=True, store=store, epsilon=epsilon
        )

    def stats(self) -> dict[str, object]:
        """Server-wide and per-store operational statistics."""
        return self.request("stats", _idempotent=True)

    def metrics(self, format: str = "json") -> dict[str, object]:
        """The server process's metrics registry.

        ``format="json"`` returns the structured snapshot under
        ``"metrics"``; ``format="text"`` returns the Prometheus text
        exposition under ``"text"``.
        """
        return self.request("metrics", _idempotent=True, format=format)
