"""Typed in-memory relations.

A :class:`Relation` is the database abstraction the whole library operates
on: a named, ordered collection of typed columns backed by numpy arrays.
It supports the operations the mining pipeline needs — row access, column
access, uniform row sampling, projection, and CSV round-trips — and nothing
more.  The running example of the paper (Table 1) is provided by
:func:`running_example`.
"""

from __future__ import annotations

import csv
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.types import ColumnType, coerce_values, infer_column_type


@dataclass(frozen=True)
class Column:
    """A single typed column of a relation."""

    name: str
    type: ColumnType
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    def distinct_count(self) -> int:
        """Number of distinct values in the column."""
        return len(np.unique(self.values))

    def value_set(self) -> set[object]:
        """Distinct values as a Python set (used by the 30% sharing rule)."""
        return set(self.values.tolist())


class Relation:
    """A finite set of tuples over a fixed relation schema.

    Columns are stored as numpy arrays (``float64`` / ``int64`` for numeric
    columns, ``object`` for strings) which allows the evidence-set builder to
    vectorise tuple-pair comparisons.

    Parameters
    ----------
    name:
        Relation name (used in reports and DC rendering).
    columns:
        Ordered mapping from column name to raw values.  All columns must
        have the same length.
    types:
        Optional explicit column types; inferred from the data if omitted.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence[object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns of {name!r} have inconsistent lengths: {lengths}")
        self.name = name
        self._columns: dict[str, Column] = {}
        for column_name, values in columns.items():
            column_type = (types or {}).get(column_name) or infer_column_type(values)
            coerced = coerce_values(list(values), column_type)
            if column_type is ColumnType.INTEGER:
                array = np.asarray(coerced, dtype=np.int64)
            elif column_type is ColumnType.FLOAT:
                array = np.asarray(coerced, dtype=np.float64)
            else:
                array = np.asarray(coerced, dtype=object)
            self._columns[column_name] = Column(column_name, column_type, array)
        self._n_rows = lengths.pop() if lengths else 0
        # Per-column string factorization cache (see string_codes): maps a
        # column name to its (sorted unique strings, per-row codes) pair, and
        # an ordered column pair to its jointly comparable code arrays.
        self._factorization_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._pair_codes_cache: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Schema and size
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        """Column names in schema order."""
        return list(self._columns)

    @property
    def columns(self) -> list[Column]:
        """Column objects in schema order."""
        return list(self._columns.values())

    @property
    def n_rows(self) -> int:
        """Number of tuples in the relation."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of attributes in the schema."""
        return len(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> Column:
        """Return the column called ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"relation {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Whether the schema contains ``name``."""
        return name in self._columns

    def column_type(self, name: str) -> ColumnType:
        """Type of the column called ``name``."""
        return self.column(name).type

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row index {index} out of range for {self._n_rows} rows")
        return {name: col.values[index] for name, col in self._columns.items()}

    def rows(self) -> Iterator[dict[str, object]]:
        """Iterate over all rows as dicts."""
        for index in range(self._n_rows):
            yield self.row(index)

    def value(self, index: int, column: str) -> object:
        """Value of ``column`` in row ``index``."""
        return self.column(column).values[index]

    # ------------------------------------------------------------------
    # Cached string factorization (evidence-builder support)
    # ------------------------------------------------------------------
    def _column_factorization(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Sorted unique strings of a column and the per-row codes into them.

        Computed once per column and cached for the relation's lifetime;
        every predicate group over the column reuses it on every evidence
        build instead of re-running ``np.unique`` string factorization.
        """
        cached = self._factorization_cache.get(name)
        if cached is None:
            values = np.asarray([str(v) for v in self.column(name).values.tolist()])
            uniques, codes = np.unique(values, return_inverse=True)
            cached = (uniques, codes.ravel().astype(np.int64))
            self._factorization_cache[name] = cached
        return cached

    def string_codes(self, left: str, right: str) -> tuple[np.ndarray, np.ndarray]:
        """Jointly comparable integer codes for two (string) columns.

        Equal codes mean equal string values *across* the two columns.  For a
        single column this is its cached factorization; for a pair of
        distinct columns the two per-column factorizations are aligned on a
        merged vocabulary (work proportional to the number of distinct
        values, not the number of rows).
        """
        left_uniques, left_codes = self._column_factorization(left)
        if left == right:
            return left_codes, left_codes
        cached = self._pair_codes_cache.get((left, right))
        if cached is None:
            right_uniques, right_codes = self._column_factorization(right)
            vocabulary = np.unique(np.concatenate([left_uniques, right_uniques]))
            cached = (
                np.searchsorted(vocabulary, left_uniques)[left_codes],
                np.searchsorted(vocabulary, right_uniques)[right_codes],
            )
            self._pair_codes_cache[(left, right)] = cached
        return cached

    # ------------------------------------------------------------------
    # Derived relations
    # ------------------------------------------------------------------
    def project(self, column_names: Sequence[str]) -> "Relation":
        """Return a relation containing only the given columns."""
        data = {name: self.column(name).values for name in column_names}
        types = {name: self.column(name).type for name in column_names}
        return Relation(self.name, data, types)

    def take(self, indices: Sequence[int]) -> "Relation":
        """Return a relation containing the rows at ``indices`` (in order)."""
        index_array = np.asarray(list(indices), dtype=np.int64)
        data = {name: col.values[index_array] for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        return Relation(self.name, data, types)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows."""
        return self.take(range(min(n, self._n_rows)))

    def sample(self, fraction: float, seed: int | None = None) -> "Relation":
        """Uniformly sample ``fraction`` of the rows without replacement.

        This is the sampler component of ADCMiner (Figure 1, step 2).  A
        fraction of 1.0 (or more) returns the relation unchanged.
        """
        if fraction <= 0:
            raise ValueError("sample fraction must be positive")
        if fraction >= 1.0:
            return self
        rng = random.Random(seed)
        sample_size = max(2, round(fraction * self._n_rows))
        indices = sorted(rng.sample(range(self._n_rows), min(sample_size, self._n_rows)))
        return self.take(indices)

    def copy(self) -> "Relation":
        """Return a deep copy (noise injection mutates copies, never inputs)."""
        data = {name: col.values.copy() for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        return Relation(self.name, data, types)

    def with_values(self, column: str, values: np.ndarray) -> "Relation":
        """Return a copy of the relation with one column replaced."""
        data = {name: col.values for name, col in self._columns.items()}
        types = {name: col.type for name, col in self._columns.items()}
        data[column] = values
        return Relation(self.name, data, types)

    # ------------------------------------------------------------------
    # Construction helpers and IO
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        name: str,
        records: Iterable[Mapping[str, object]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Relation":
        """Build a relation from an iterable of row dicts."""
        records = list(records)
        if not records:
            raise ValueError("cannot build a relation from zero records")
        column_names = list(records[0])
        data = {name_: [record[name_] for record in records] for name_ in column_names}
        return cls(name, data, types)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        name: str | None = None,
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Relation":
        """Load a relation from a CSV file with a header row."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            records = list(reader)
        return cls.from_records(name or path.stem, records, types)

    def to_csv(self, path: str | Path) -> None:
        """Write the relation to a CSV file with a header row."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.column_names)
            for row in self.rows():
                writer.writerow([row[name] for name in self.column_names])

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Relation({self.name!r}, rows={self._n_rows}, columns={self.column_names})"

    def describe(self) -> str:
        """One line per column: name, type, distinct count."""
        lines = [f"{self.name}: {self._n_rows} rows"]
        for col in self.columns:
            lines.append(f"  {col.name:<16} {col.type.value:<8} distinct={col.distinct_count()}")
        return "\n".join(lines)


@dataclass
class RelationStatistics:
    """Summary statistics of a relation (used for Table 4)."""

    name: str
    n_rows: int
    n_columns: int
    n_golden_dcs: int = 0
    extra: dict[str, object] = field(default_factory=dict)


def running_example() -> Relation:
    """The 15-tuple income/tax relation of Table 1 in the paper.

    Monetary values are stored as integers (``28K`` becomes ``28000``) so
    that order predicates apply to them.
    """
    names = ["Alice", "Mark", "Bob", "Mary", "Alice", "Julia", "Jimmy", "Sam",
             "Jeff", "Gary", "Ron", "Jennifer", "Adam", "Tim", "Sarah"]
    states = ["NY", "NY", "NY", "NY", "NY", "WA", "WA", "WA",
              "WA", "WA", "WA", "WA", "WA", "IL", "IL"]
    zips = [11803, 10102, 13914, 10437, 10437, 98112, 98112, 98112,
            98112, 98112, 98112, 98112, 98112, 62078, 98112]
    incomes = [28000, 42000, 93000, 58000, 26000, 27000, 24000, 49000,
               56000, 50000, 58000, 61000, 20000, 39000, 54000]
    taxes = [2400, 4700, 11800, 6700, 2100, 1400, 1600, 6800,
             7800, 7200, 8000, 8500, 1000, 5000, 5000]
    return Relation(
        "people",
        {
            "Name": names,
            "State": states,
            "Zip": zips,
            "Income": incomes,
            "Tax": taxes,
        },
        types={
            "Name": ColumnType.STRING,
            "State": ColumnType.STRING,
            "Zip": ColumnType.INTEGER,
            "Income": ColumnType.INTEGER,
            "Tax": ColumnType.INTEGER,
        },
    )
