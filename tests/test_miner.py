"""Tests for the ADCMiner pipeline and the paper's running example."""

from __future__ import annotations

import pytest

from repro.core.dc import DenialConstraint
from repro.core.miner import ADCMiner, mine_adcs
from repro.core.operators import Operator
from repro.core.predicates import same_column_predicate
from repro.data.datasets import generate_hospital
from repro.data.relation import running_example


class TestPipeline:
    def test_running_example_discovery(self):
        result = ADCMiner(function="f1", epsilon=0.05).mine(running_example())
        assert len(result) > 0
        assert result.function_name == "f1"
        assert result.timings.total > 0
        assert len(result.constraints) == len(result.adcs)

    def test_example_1_1_rule_recovered(self):
        income_tax_rule = DenialConstraint([
            same_column_predicate("State", Operator.EQ),
            same_column_predicate("Income", Operator.GT),
            same_column_predicate("Tax", Operator.LE),
        ])
        result = ADCMiner(function="f1", epsilon=0.05).mine(running_example())
        assert any(
            constraint.predicates <= income_tax_rule.predicates
            for constraint in result.constraints
        )

    def test_function_accepts_instances_and_names(self):
        from repro.core.approximation import F2

        by_name = ADCMiner(function="f2", epsilon=0.2, max_dc_size=2).mine(running_example())
        by_instance = ADCMiner(function=F2(), epsilon=0.2, max_dc_size=2).mine(running_example())
        assert {c.predicates for c in by_name.constraints} == {
            c.predicates for c in by_instance.constraints
        }

    def test_all_three_functions_run(self):
        for name in ("f1", "f2", "f3"):
            result = ADCMiner(function=name, epsilon=0.1, max_dc_size=2).mine(running_example())
            assert result.function_name == name
            assert all(adc.violation_score <= 0.1 for adc in result.adcs)

    def test_sampling_reduces_rows(self):
        dataset = generate_hospital(n_rows=80, seed=1)
        result = ADCMiner(function="f1", epsilon=0.1, sample_fraction=0.5,
                          max_dc_size=2, seed=3).mine(dataset.relation)
        assert result.sample_plan.sample_rows == 40
        assert result.evidence.n_rows == 40

    def test_adjusted_function_used_on_samples(self):
        dataset = generate_hospital(n_rows=80, seed=1)
        result = ADCMiner(function="f1", epsilon=0.1, sample_fraction=0.5,
                          adjust_for_sample=True, max_dc_size=2, seed=3).mine(dataset.relation)
        assert result.function_name == "f1'"

    def test_pairwise_evidence_method(self):
        fast = ADCMiner(function="f1", epsilon=0.05, evidence_method="vectorized").mine(running_example())
        slow = ADCMiner(function="f1", epsilon=0.05, evidence_method="pairwise").mine(running_example())
        assert {c.predicates for c in fast.constraints} == {c.predicates for c in slow.constraints}

    def test_invalid_evidence_method_rejected(self):
        with pytest.raises(ValueError):
            ADCMiner(evidence_method="bogus")

    def test_mine_adcs_wrapper(self):
        result = mine_adcs(running_example(), "f1", 0.05)
        assert len(result) > 0

    def test_describe_mentions_counts(self):
        result = ADCMiner(function="f1", epsilon=0.05).mine(running_example())
        text = result.describe(limit=3)
        assert "minimal ADCs" in text
        assert "predicate space" in text

    def test_deterministic_given_seed(self):
        dataset = generate_hospital(n_rows=60, seed=1)
        first = ADCMiner("f1", 0.1, sample_fraction=0.5, max_dc_size=2, seed=11).mine(dataset.relation)
        second = ADCMiner("f1", 0.1, sample_fraction=0.5, max_dc_size=2, seed=11).mine(dataset.relation)
        assert {c.predicates for c in first.constraints} == {c.predicates for c in second.constraints}
