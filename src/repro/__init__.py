"""repro — a reproduction of "Approximate Denial Constraints" (VLDB 2020).

The package implements the ADCMiner framework of Livshits, Heidari, Ilyas
and Kimelfeld: mining minimal approximate denial constraints (ADCs) from
relational data under a general family of approximation functions, together
with the substrates the paper depends on (typed relations, predicate spaces,
evidence sets, minimal hitting-set enumeration, sampling theory, baselines,
synthetic datasets and evaluation metrics).

Typical usage::

    from repro import ADCMiner, running_example

    result = ADCMiner(function="f1", epsilon=0.05).mine(running_example())
    for adc in result.adcs:
        print(adc)
"""

from repro.data import (
    Dataset,
    Relation,
    generate_dataset,
    running_example,
)
from repro.core import (
    ADCEnum,
    ADCMiner,
    ApproximationFunction,
    DenialConstraint,
    DiscoveredADC,
    EvidenceSet,
    F1,
    F2,
    F3Greedy,
    MiningResult,
    Operator,
    PartialEvidenceSet,
    Predicate,
    PredicateSpace,
    TileKernel,
    TileScheduler,
    build_evidence_set,
    build_evidence_set_parallel,
    build_evidence_set_tiled,
    build_predicate_space,
    choose_tile_rows,
    enumerate_adcs,
    mine_adcs,
)
from repro.incremental import (
    DeltaEvidenceBuilder,
    EvidenceStore,
    ViolationService,
)
from repro.cluster import (
    ClusterCoordinator,
    LocalCluster,
    build_evidence_set_cluster,
    parallel_enumerate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Relation",
    "Dataset",
    "running_example",
    "generate_dataset",
    "Operator",
    "Predicate",
    "PredicateSpace",
    "build_predicate_space",
    "DenialConstraint",
    "EvidenceSet",
    "build_evidence_set",
    "build_evidence_set_tiled",
    "build_evidence_set_parallel",
    "TileScheduler",
    "TileKernel",
    "PartialEvidenceSet",
    "choose_tile_rows",
    "ApproximationFunction",
    "F1",
    "F2",
    "F3Greedy",
    "ADCEnum",
    "DiscoveredADC",
    "enumerate_adcs",
    "ADCMiner",
    "MiningResult",
    "mine_adcs",
    "DeltaEvidenceBuilder",
    "EvidenceStore",
    "ViolationService",
    "ClusterCoordinator",
    "LocalCluster",
    "build_evidence_set_cluster",
    "parallel_enumerate",
]
