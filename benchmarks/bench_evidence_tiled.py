"""Evidence construction — dense word planes vs the tiled builder.

Not a paper figure: this benchmark guards the packed-word evidence pipeline.
It builds the evidence set of a 1k-row benchmark relation with the dense
(full ``n x n`` plane) oracle and with the tiled builder across tile sizes,
reporting wall-clock seconds and tracemalloc peak memory.  The tiled builder
must match the dense builder's speed while never allocating an ``n x n``
word plane.

Run under pytest (``pytest benchmarks/bench_evidence_tiled.py``) or
standalone (``PYTHONPATH=src python benchmarks/bench_evidence_tiled.py``).
"""

from __future__ import annotations

import time
import tracemalloc

from repro.core.evidence_builder import (
    build_evidence_set_dense,
    build_evidence_set_tiled,
)
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset

#: Rows of the benchmark relation (the "1k-row" reference point).
BENCH_ROWS = 1000

#: Tile edge lengths swept by the benchmark.
TILE_SIZES = (128, 256, 512)


def _measure(builder, relation, space, **kwargs) -> tuple[float, int, int]:
    """Run one builder under tracemalloc; returns (seconds, peak_bytes, n)."""
    tracemalloc.start()
    started = time.perf_counter()
    evidence = builder(relation, space, include_participation=False, **kwargs)
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak, len(evidence)


def run_evidence_builder_comparison(n_rows: int = BENCH_ROWS) -> list[dict[str, object]]:
    """Dense vs tiled builder on the benchmark relation; one row per builder."""
    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    # Warm the relation's string-factorization cache so neither builder pays
    # for it inside the timed region (both would otherwise pay it once).
    for column in relation.column_names:
        if not relation.column(column).type.is_numeric:
            relation.string_codes(column, column)

    rows: list[dict[str, object]] = []
    # Best of two runs per builder: single-shot wall-clock comparisons are
    # too noisy on shared machines for the speed assertion below.
    dense_runs = [_measure(build_evidence_set_dense, relation, space) for _ in range(2)]
    seconds, peak, n_evidences = min(dense_runs)
    rows.append({
        "builder": "dense",
        "tile_rows": "-",
        "seconds": seconds,
        "peak_mb": peak / 1e6,
        "evidences": n_evidences,
    })
    for tile_rows in TILE_SIZES:
        tiled_runs = [
            _measure(build_evidence_set_tiled, relation, space, tile_rows=tile_rows)
            for _ in range(2)
        ]
        seconds, peak, n_evidences = min(tiled_runs)
        rows.append({
            "builder": "tiled",
            "tile_rows": tile_rows,
            "seconds": seconds,
            "peak_mb": peak / 1e6,
            "evidences": n_evidences,
        })
    return rows


def test_tiled_matches_dense_speed_without_dense_planes(benchmark):
    rows = benchmark.pedantic(run_evidence_builder_comparison, iterations=1, rounds=1)
    from conftest import report

    report(
        f"Evidence construction on {BENCH_ROWS} rows: dense vs tiled "
        "(seconds / tracemalloc peak)",
        rows,
    )
    dense = rows[0]
    tiled = [row for row in rows if row["builder"] == "tiled"]
    relation = generate_dataset("tax", n_rows=BENCH_ROWS, seed=7).relation
    space = build_predicate_space(relation)
    n_words = max(1, (len(space) + 63) // 64)
    dense_plane_bytes = BENCH_ROWS * BENCH_ROWS * n_words * 8

    # All builders agree on the evidence multiset size.
    assert all(row["evidences"] == dense["evidences"] for row in tiled)
    # The tiled builder never materialises the dense n x n word plane: its
    # peak scales with tile_rows^2, so the smallest tile stays below even a
    # single full plane, and every tile stays far below the dense peak.
    assert min(row["peak_mb"] for row in tiled) * 1e6 < dense_plane_bytes
    assert all(row["peak_mb"] < dense["peak_mb"] / 2 for row in tiled)
    # And the best tile size is at least dense-builder speed (best-of-two
    # timings above plus slack absorb timer noise on shared CI machines).
    assert min(row["seconds"] for row in tiled) <= dense["seconds"] * 1.25


def main() -> None:
    rows = run_evidence_builder_comparison()
    header = f"{'builder':<8} {'tile':>6} {'seconds':>9} {'peak MB':>9} {'evidences':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['builder']:<8} {str(row['tile_rows']):>6} "
            f"{row['seconds']:>9.3f} {row['peak_mb']:>9.1f} {row['evidences']:>10}"
        )


if __name__ == "__main__":
    main()
