"""Federate worker metric snapshots into one Prometheus exposition.

A cluster coordinator can ask every live worker for a JSON snapshot of its
process registry (the ``metrics_pull`` control frame,
:meth:`~repro.cluster.coordinator.ClusterCoordinator.pull_metrics`).  This
module turns those snapshots — dicts of the
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` schema wrapped with
the worker's identity and a staleness stamp — into scrape output:

* every worker sample gains a ``worker="<id>"`` label (the worker's
  self-reported ``host:pid`` identity, so series survive re-registration),
* samples merge *under the coordinator's own family headers* whenever the
  family is declared locally too (one ``# HELP``/``# TYPE`` pair per
  family, as the exposition format requires), and
* families only a worker knows about are appended with the headers its
  snapshot carried.

Snapshots are best-effort observability data: a malformed or stale one is
skipped, never raised on.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.prometheus import (
    _escape_help,
    _format_value,
    _labels_text,
    render_text,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "merge_snapshots",
    "prune_idle",
    "render_federated",
    "render_families",
]


def prune_idle(families: Mapping[str, Mapping[str, object]]) -> dict[str, dict]:
    """Drop families that have recorded nothing yet.

    Worker registries declare the *whole* metric surface at import (every
    ``repro_*`` family), so an unpruned snapshot ships dozens of all-zero
    series per worker per pull.  A sample counts as live when its value,
    histogram count, or gauge reading is non-zero; gauges legitimately
    sitting at zero after moving are indistinguishable from never-fired
    and are dropped too — acceptable for a fleet snapshot.
    """
    pruned: dict[str, dict] = {}
    for name, family in families.items():
        samples = [
            sample
            for sample in family.get("samples", ())
            if float(sample.get("value", 0) or 0) != 0.0
            or int(sample.get("count", 0) or 0) != 0
        ]
        if samples:
            pruned[name] = {
                "type": family.get("type", "untyped"),
                "help": family.get("help", ""),
                "samples": samples,
            }
    return pruned


def _labeled_samples(
    family: Mapping[str, object], worker_id: str
) -> list[dict[str, object]]:
    """The family's samples with ``worker="<id>"`` stamped into the labels."""
    labeled = []
    for sample in family.get("samples", ()):  # type: ignore[union-attr]
        labels = dict(sample.get("labels", {}) or {})
        labels["worker"] = worker_id
        labeled.append({**sample, "labels": labels})
    return labeled


def merge_snapshots(
    snapshots: Iterable[Mapping[str, object]],
) -> dict[str, dict]:
    """One families-dict holding every worker's samples, worker-labeled.

    ``snapshots`` are the payloads ``pull_metrics`` collects: each carries
    ``worker`` (self-reported id) and ``families`` (registry snapshot).
    Disabled or malformed snapshots contribute nothing; a type conflict
    between workers (impossible with in-tree declarations, possible with
    a version skew) keeps the first seen type and skips the clash.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        families = snapshot.get("families")
        if not isinstance(families, Mapping):
            continue
        worker_id = str(snapshot.get("worker", "_unknown"))
        for name, family in families.items():
            if not isinstance(family, Mapping):
                continue
            entry = merged.setdefault(
                name,
                {
                    "type": family.get("type", "untyped"),
                    "help": family.get("help", ""),
                    "samples": [],
                },
            )
            if entry["type"] != family.get("type", "untyped"):
                continue
            entry["samples"].extend(_labeled_samples(family, worker_id))
    return merged


def _sample_lines(name: str, sample: Mapping[str, object]) -> list[str]:
    """Exposition lines for one snapshot-schema sample (scalar or histogram)."""
    labels = sample.get("labels", {}) or {}
    names = tuple(str(k) for k in labels)
    values = tuple(str(v) for v in labels.values())
    if "buckets" in sample:
        lines = []
        for bound, cumulative in sample["buckets"]:  # type: ignore[union-attr]
            le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
            label_text = _labels_text(names, values, extra=(("le", le),))
            lines.append(f"{name}_bucket{label_text} {int(cumulative)}")
        label_text = _labels_text(names, values)
        lines.append(f"{name}_sum{label_text} {_format_value(float(sample['sum']))}")
        lines.append(f"{name}_count{label_text} {int(sample['count'])}")
        return lines
    label_text = _labels_text(names, values)
    return [f"{name}{label_text} {_format_value(float(sample['value']))}"]


def render_families(families: Mapping[str, Mapping[str, object]]) -> str:
    """Prometheus text for a families-dict (the JSON snapshot schema)."""
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        lines.append(f"# HELP {name} {_escape_help(str(family.get('help', '')))}")
        lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
        for sample in family.get("samples", ()):
            lines.extend(_sample_lines(name, sample))
    return "\n".join(lines) + "\n" if lines else ""


def render_federated(
    registry: MetricsRegistry,
    snapshots: Iterable[Mapping[str, object]],
) -> str:
    """The local exposition with worker samples merged under its headers.

    Families both sides know keep the local ``# HELP``/``# TYPE`` pair and
    gain the worker-labeled sample lines right below the local ones;
    worker-only families are appended at the end with their own headers.
    """
    merged = merge_snapshots(snapshots)
    if not merged:
        return render_text(registry)
    local_names = {family.name for family in registry.families()}
    lines: list[str] = []
    for line in render_text(registry).splitlines():
        lines.append(line)
        if line.startswith("# TYPE "):
            name = line.split(" ", 3)[2]
            family = merged.get(name)
            if family is not None and name in local_names:
                for sample in family["samples"]:
                    lines.extend(_sample_lines(name, sample))
    remote_only = {
        name: family for name, family in merged.items()
        if name not in local_names
    }
    if remote_only:
        lines.append(render_families(remote_only).rstrip("\n"))
    return "\n".join(lines) + "\n"
