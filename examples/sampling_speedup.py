"""Mining from a sample (Section 7): accuracy vs running time.

Mines the synthetic NCVoter dataset at several sample sizes, comparing the
discovered ADCs against the full-data run (F1 score) and showing the
running-time reduction, plus the sample-threshold mathematics of Section 7.2.

Run with::

    python examples/sampling_speedup.py
"""

from __future__ import annotations

from repro import ADCMiner
from repro.analysis.metrics import f1_score
from repro.core.sampling import accept_on_sample, normal_confidence_interval, sample_threshold
from repro.data.datasets import generate_voter


def main() -> None:
    dataset = generate_voter(n_rows=300, seed=5)
    epsilon = 0.05

    reference = ADCMiner(function="f1", epsilon=epsilon, max_dc_size=3, seed=1)
    full_result = reference.mine(dataset.relation)
    print(f"full data:    {dataset.n_rows} tuples, {len(full_result)} ADCs, "
          f"{full_result.timings.total:.2f}s")

    for fraction in (0.2, 0.3, 0.4, 0.6):
        miner = ADCMiner(function="f1", epsilon=epsilon, sample_fraction=fraction,
                         max_dc_size=3, seed=1)
        result = miner.mine(dataset.relation)
        quality = f1_score(result.constraints, full_result.constraints)
        reduction = 1.0 - result.timings.total / full_result.timings.total
        print(f"sample {fraction:.0%}:  {result.sample_plan.sample_rows} tuples, "
              f"{len(result)} ADCs, {result.timings.total:.2f}s "
              f"({reduction:.0%} faster), F1 vs full = {quality:.2f}")

    print()
    print("Section 7.2 sample-threshold mathematics for one DC:")
    p_hat = 0.008
    sample_rows = 120
    sample_pairs = sample_rows * (sample_rows - 1)
    low, high = normal_confidence_interval(p_hat, sample_pairs, confidence=0.9)
    threshold = sample_threshold(epsilon, p_hat, sample_pairs, alpha=0.05)
    accepted = accept_on_sample(epsilon, p_hat, sample_pairs, alpha=0.05)
    print(f"  observed sample violation fraction p_hat = {p_hat:.3%} on {sample_rows} tuples")
    print(f"  90% confidence interval for p: [{low:.3%}, {high:.3%}]")
    print(f"  sample threshold epsilon_J = {threshold:.3%} (database threshold {epsilon:.0%})")
    print(f"  accept the DC on the sample: {accepted}")


if __name__ == "__main__":
    main()
