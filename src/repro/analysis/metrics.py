"""Quality metrics for discovered denial constraints.

Two families of metrics are used in the paper's evaluation:

* **F1 against a reference run** (Figure 11): the ADCs mined from a sample
  are compared with the ADCs mined from the full dataset; precision, recall
  and their harmonic mean are computed over normalised predicate sets.
* **G-recall against golden DCs** (Figure 14): the fraction of expert-curated
  golden DCs recovered by a discovery run.  A golden DC counts as recovered
  when some discovered constraint is at least as general as it, i.e. its
  normalised predicate set is a subset of the golden DC's.

The module also provides the dataset statistics of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.dc import DenialConstraint
from repro.data.datasets import Dataset


def _normalised_sets(constraints: Iterable[DenialConstraint]) -> set[frozenset]:
    """Normalised predicate sets of a DC collection (redundancy removed)."""
    return {constraint.normalized().predicates for constraint in constraints}


@dataclass(frozen=True)
class DCSetComparison:
    """Precision / recall / F1 of a discovered DC set against a reference."""

    n_discovered: int
    n_reference: int
    n_common: int

    @property
    def precision(self) -> float:
        """Fraction of discovered DCs present in the reference set."""
        return self.n_common / self.n_discovered if self.n_discovered else 0.0

    @property
    def recall(self) -> float:
        """Fraction of reference DCs present in the discovered set."""
        return self.n_common / self.n_reference if self.n_reference else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def compare_dc_sets(
    discovered: Iterable[DenialConstraint],
    reference: Iterable[DenialConstraint],
) -> DCSetComparison:
    """Compare two DC sets by exact (normalised) predicate-set equality."""
    discovered_sets = _normalised_sets(discovered)
    reference_sets = _normalised_sets(reference)
    return DCSetComparison(
        n_discovered=len(discovered_sets),
        n_reference=len(reference_sets),
        n_common=len(discovered_sets & reference_sets),
    )


def precision_recall_f1(
    discovered: Iterable[DenialConstraint],
    reference: Iterable[DenialConstraint],
) -> tuple[float, float, float]:
    """Precision, recall and F1 of ``discovered`` against ``reference``."""
    comparison = compare_dc_sets(discovered, reference)
    return comparison.precision, comparison.recall, comparison.f1


def f1_score(
    discovered: Iterable[DenialConstraint],
    reference: Iterable[DenialConstraint],
) -> float:
    """F1 of ``discovered`` against ``reference`` (the Figure 11 measure)."""
    return compare_dc_sets(discovered, reference).f1


def g_recall(
    discovered: Iterable[DenialConstraint],
    golden: Sequence[DenialConstraint],
) -> float:
    """Fraction of golden DCs recovered by the discovery run (Figure 14).

    A golden DC is recovered when a discovered DC's normalised predicate set
    is a (non-strict) subset of the golden DC's — the discovered rule is at
    least as general as the expert rule.
    """
    if not golden:
        return 0.0
    discovered_sets = _normalised_sets(discovered)
    recovered = 0
    for golden_dc in golden:
        golden_predicates = golden_dc.normalized().predicates
        if any(candidate <= golden_predicates for candidate in discovered_sets):
            recovered += 1
    return recovered / len(golden)


def recovered_golden(
    discovered: Iterable[DenialConstraint],
    golden: Sequence[DenialConstraint],
) -> list[DenialConstraint]:
    """The golden DCs matched by the discovery run (for qualitative tables)."""
    discovered_sets = _normalised_sets(discovered)
    matched = []
    for golden_dc in golden:
        golden_predicates = golden_dc.normalized().predicates
        if any(candidate <= golden_predicates for candidate in discovered_sets):
            matched.append(golden_dc)
    return matched


def dataset_statistics(dataset: Dataset) -> dict[str, object]:
    """The Table 4 row of one dataset."""
    return {
        "dataset": dataset.name,
        "tuples": dataset.n_rows,
        "attributes": dataset.n_columns,
        "golden_dcs": dataset.n_golden,
    }
