"""Mergeable partial evidence sets.

A :class:`PartialEvidenceSet` accumulates the output of tile kernels over
any subset of tiles: a word-keyed dedup dictionary of distinct evidences,
per-chunk multiplicity histograms, and per-chunk tuple-participation
histograms (keyed ``evidence_id * n_rows + tuple_id``, CSR-style at
finalization).  Two partials built from disjoint tile sets can be
:meth:`merge`-d — the operation is associative and commutative up to
evidence-id relabeling, and :meth:`finalize` erases the relabeling by
sorting evidences into the canonical lexicographic word order, so *any*
merge tree over the same tiles yields a bit-identical
:class:`~repro.core.evidence.EvidenceSet`.  This is what lets the process
pool (and, later, cross-machine shards) combine results in completion
order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.evidence import EvidenceSet, TupleParticipation, lexsort_word_rows

if TYPE_CHECKING:
    from repro.core.predicate_space import PredicateSpace
    from repro.engine.kernel import TilePartial


class PartialEvidenceSet:
    """Evidence accumulated over a subset of tiles, mergeable with others.

    Parameters
    ----------
    n_rows:
        Number of tuples of the underlying relation (fixes the
        participation key arithmetic; merging partials with different
        ``n_rows`` is an error).
    n_words:
        Evidence word width.
    include_participation:
        Whether tuple-participation histograms are tracked.
    """

    def __init__(self, n_rows: int, n_words: int, include_participation: bool = True) -> None:
        self.n_rows = int(n_rows)
        self.n_words = int(n_words)
        self.include_participation = bool(include_participation)
        self._ids: dict[bytes, int] = {}
        self._rows: list[np.ndarray] = []
        self._id_chunks: list[np.ndarray] = []
        self._count_chunks: list[np.ndarray] = []
        self._part_key_chunks: list[np.ndarray] = []
        self._part_count_chunks: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def recorded_pairs(self) -> int:
        """Ordered pairs absorbed so far (sum of chunk multiplicities)."""
        return int(sum(int(chunk.sum()) for chunk in self._count_chunks))

    def _intern_rows(self, words: np.ndarray) -> np.ndarray:
        """Map distinct word rows to global ids, registering new ones."""
        mapping = np.empty(len(words), dtype=np.int64)
        ids = self._ids
        for local, row in enumerate(words):
            key = row.tobytes()
            global_id = ids.get(key)
            if global_id is None:
                global_id = len(ids)
                ids[key] = global_id
                # copy: appending the view would pin the source array,
                # defeating the O(tile^2) memory bound.
                self._rows.append(row.copy())
            mapping[local] = global_id
        return mapping

    def _remap_part_keys(self, keys: np.ndarray, mapping: np.ndarray) -> np.ndarray:
        """Rewrite ``local_id * n + tuple`` keys under an id mapping."""
        n = max(self.n_rows, 1)
        local_ids = keys // n
        tuple_ids = keys - local_ids * n
        return mapping[local_ids] * n + tuple_ids

    def add_tile(self, tile_partial: "TilePartial") -> "PartialEvidenceSet":
        """Absorb one tile kernel result; returns ``self`` for chaining."""
        mapping = self._intern_rows(tile_partial.words)
        self._id_chunks.append(mapping)
        self._count_chunks.append(np.asarray(tile_partial.counts, dtype=np.int64))
        if self.include_participation:
            if tile_partial.part_keys is None:
                raise ValueError("tile partial lacks the participation histogram")
            self._part_key_chunks.append(
                self._remap_part_keys(tile_partial.part_keys, mapping)
            )
            self._part_count_chunks.append(
                np.asarray(tile_partial.part_counts, dtype=np.int64)
            )
        return self

    def merge(self, other: "PartialEvidenceSet") -> "PartialEvidenceSet":
        """Fold ``other`` into ``self``; returns ``self`` for chaining.

        The word dictionaries are unioned (``other``'s ids remapped onto
        ``self``'s), multiplicity chunks concatenate (their histograms add
        at finalization), and participation chunks concatenate with their
        evidence ids rewritten.  The operation is associative and
        commutative up to id relabeling, which :meth:`finalize` erases.
        """
        if other.n_rows != self.n_rows or other.n_words != self.n_words:
            raise ValueError("cannot merge partials of different relations")
        if other.include_participation != self.include_participation:
            raise ValueError("cannot merge partials with mismatched participation")
        # other._ids already holds each row's byte key, and other._rows owns
        # copies that are never mutated, so the union can reuse both instead
        # of re-serializing and re-copying every row.
        remap = np.empty(len(other._rows), dtype=np.int64)
        for key, other_id in other._ids.items():
            global_id = self._ids.get(key)
            if global_id is None:
                global_id = len(self._ids)
                self._ids[key] = global_id
                self._rows.append(other._rows[other_id])
            remap[other_id] = global_id
        for chunk in other._id_chunks:
            self._id_chunks.append(remap[chunk])
        self._count_chunks.extend(other._count_chunks)
        if self.include_participation:
            for keys in other._part_key_chunks:
                self._part_key_chunks.append(self._remap_part_keys(keys, remap))
            self._part_count_chunks.extend(other._part_count_chunks)
        return self

    def rebase_rows(self, new_n_rows: int) -> "PartialEvidenceSet":
        """Re-key the partial onto a grown relation of ``new_n_rows`` tuples.

        Participation keys encode ``evidence_id * n_rows + tuple_id``, so a
        partial accumulated against an ``n``-row relation cannot merge with
        tiles of the appended ``n + m``-row relation until its keys are
        rewritten under the new stride.  Tuple ids themselves are stable
        (appends never renumber existing rows), so only the stride changes.
        Chunk arrays are replaced, never mutated, keeping :meth:`copy`-shared
        chunks intact.  Returns ``self`` for chaining.
        """
        if new_n_rows < self.n_rows:
            raise ValueError(
                f"cannot rebase partial of {self.n_rows} rows down to {new_n_rows}"
            )
        if new_n_rows == self.n_rows:
            return self
        if self.include_participation and self._part_key_chunks:
            old_n = max(self.n_rows, 1)
            new_n = int(new_n_rows)
            rekeyed: list[np.ndarray] = []
            for keys in self._part_key_chunks:
                evidence_ids = keys // old_n
                tuple_ids = keys - evidence_ids * old_n
                rekeyed.append(evidence_ids * new_n + tuple_ids)
            self._part_key_chunks = rekeyed
        self.n_rows = int(new_n_rows)
        return self

    def word_histogram(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct evidence words and their summed multiplicities, unfinalized.

        Returns ``(words, totals)``: the ``(n_distinct, n_words)`` uint64
        rows in *intern* order (not the canonical lexicographic order —
        callers aggregating over rows must not depend on row positions) and
        the per-row total pair multiplicity across all absorbed chunks.

        This is the maintenance hook of the push-based violation counters
        (:class:`repro.serve.counters.ViolationCounters`): summing pair
        multiplicities over the rows a DC's hitting set misses gives the
        exact violating-pair count of :meth:`finalize` +
        :meth:`~repro.core.evidence.EvidenceSet.uncovered_pair_count`
        without paying the lexsort or the participation merge — duplicate
        grouping cannot change a sum.
        """
        words = (
            np.vstack(self._rows)
            if self._rows
            else np.zeros((0, self.n_words), dtype=np.uint64)
        )
        totals = np.zeros(len(self._ids), dtype=np.int64)
        for ids, chunk_counts in zip(self._id_chunks, self._count_chunks):
            np.add.at(totals, ids, chunk_counts)
        return words, totals

    def state_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The partial compacted to four arrays, for durable snapshots.

        Returns ``(words, totals, part_keys, part_counts)``: the distinct
        word rows in intern order with their summed multiplicities, plus the
        fully aggregated ``evidence_id * n_rows + tuple_id`` participation
        histogram (sorted by key; empty arrays when participation is off).
        Evidence ids inside ``part_keys`` index into ``words`` rows.  The
        chunk structure — which tiles were absorbed in which order, through
        which merge tree — is deliberately erased: :meth:`finalize` already
        guarantees it cannot influence the result, so a partial restored via
        :meth:`from_state_arrays` finalizes bit-identically.
        """
        words, totals = self.word_histogram()
        if self.include_participation and self._part_key_chunks:
            part_keys, part_counts = aggregate_key_histogram(
                self._part_key_chunks, self._part_count_chunks
            )
        else:
            part_keys = np.zeros(0, dtype=np.int64)
            part_counts = np.zeros(0, dtype=np.int64)
        return words, totals, part_keys, part_counts

    @classmethod
    def from_state_arrays(
        cls,
        n_rows: int,
        n_words: int,
        include_participation: bool,
        words: np.ndarray,
        totals: np.ndarray,
        part_keys: np.ndarray,
        part_counts: np.ndarray,
    ) -> "PartialEvidenceSet":
        """Rebuild a partial from :meth:`state_arrays` output.

        The restored partial merges, rebases, and finalizes exactly like the
        original — intern order is preserved by construction, and finalize
        erases it anyway.
        """
        partial = cls(n_rows, n_words, include_participation)
        words = np.ascontiguousarray(words, dtype=np.uint64).reshape(-1, int(n_words))
        if len(words):
            partial._rows = [row for row in words]
            partial._ids = {row.tobytes(): i for i, row in enumerate(words)}
            if len(partial._ids) != len(words):
                raise ValueError("snapshot word rows are not distinct")
            partial._id_chunks = [np.arange(len(words), dtype=np.int64)]
            partial._count_chunks = [np.asarray(totals, dtype=np.int64)]
        if include_participation and len(part_keys):
            partial._part_key_chunks = [np.asarray(part_keys, dtype=np.int64)]
            partial._part_count_chunks = [np.asarray(part_counts, dtype=np.int64)]
        return partial

    def copy(self) -> "PartialEvidenceSet":
        """Independent copy (chunk arrays are shared, never mutated)."""
        duplicate = PartialEvidenceSet(self.n_rows, self.n_words, self.include_participation)
        duplicate._ids = dict(self._ids)
        duplicate._rows = list(self._rows)
        duplicate._id_chunks = list(self._id_chunks)
        duplicate._count_chunks = list(self._count_chunks)
        duplicate._part_key_chunks = list(self._part_key_chunks)
        duplicate._part_count_chunks = list(self._part_count_chunks)
        return duplicate

    def finalize(self, space: "PredicateSpace") -> EvidenceSet:
        """Resolve the accumulated chunks into a canonical evidence set.

        Evidences are emitted in lexicographic word order regardless of the
        order tiles were absorbed or partials merged, so every merge tree
        over the same tiles finalizes to a bit-identical result.
        """
        n_evidences = len(self._ids)
        words = (
            np.vstack(self._rows)
            if self._rows
            else np.zeros((0, self.n_words), dtype=np.uint64)
        )
        order = lexsort_word_rows(words)
        rank = np.empty(n_evidences, dtype=np.int64)
        rank[order] = np.arange(n_evidences, dtype=np.int64)
        words = words[order]

        counts = np.zeros(n_evidences, dtype=np.int64)
        for ids, chunk_counts in zip(self._id_chunks, self._count_chunks):
            np.add.at(counts, rank[ids], chunk_counts)

        participation = None
        if self.include_participation:
            key_chunks = [
                self._remap_part_keys(keys, rank) for keys in self._part_key_chunks
            ]
            participation = participation_from_key_chunks(
                key_chunks, self._part_count_chunks, self.n_rows, n_evidences
            )
        return EvidenceSet(
            space, counts=counts, n_rows=self.n_rows,
            participation=participation, words=words,
        )


def participation_from_key_chunks(
    key_chunks: list[np.ndarray],
    count_chunks: list[np.ndarray],
    n_rows: int,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Merge per-chunk ``evidence * n + tuple`` histograms into ``vios``.

    Each chunk contributes pre-aggregated ``(key, count)`` pairs; keys may
    repeat across chunks, so they are re-aggregated with a sort + segmented
    sum before being split per evidence.
    """
    if not key_chunks:
        return [
            TupleParticipation(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
            for _ in range(n_evidences)
        ]
    unique_keys, summed = aggregate_key_histogram(key_chunks, count_chunks)
    return split_participation(unique_keys, summed, n_rows, n_evidences)


def aggregate_key_histogram(
    key_chunks: list[np.ndarray],
    count_chunks: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Sum per-chunk ``(key, count)`` histograms into one sorted histogram."""
    keys = np.concatenate(key_chunks)
    counts = np.concatenate(count_chunks)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    counts = counts[order]
    starts = np.flatnonzero(np.r_[True, keys[1:] != keys[:-1]])
    unique_keys = keys[starts]
    summed = np.add.reduceat(counts, starts)
    return unique_keys, summed


def split_participation(
    unique_keys: np.ndarray,
    key_counts: np.ndarray,
    n_rows: int,
    n_evidences: int,
) -> list[TupleParticipation]:
    """Split sorted ``evidence * n + tuple`` keys into per-evidence rows."""
    participation: list[TupleParticipation] = []
    owners = unique_keys // max(n_rows, 1)
    tuples = unique_keys % max(n_rows, 1)
    boundaries = np.searchsorted(owners, np.arange(n_evidences + 1))
    for evidence in range(n_evidences):
        start, stop = boundaries[evidence], boundaries[evidence + 1]
        participation.append(
            TupleParticipation(
                tuples[start:stop].copy(), key_counts[start:stop].astype(np.int64, copy=True)
            )
        )
    return participation
