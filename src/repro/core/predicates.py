"""Predicates of the denial-constraint predicate space.

A predicate compares one cell of a tuple with one cell of (possibly) another
tuple: ``t[A] op t'[B]``.  Following the paper (Section 4.2) three structural
forms are supported:

* same attribute across the two tuples: ``t[A] op t'[A]``;
* two different attributes of the *same* tuple: ``t[A] op t[B]``;
* two different attributes across the two tuples: ``t[A] op t'[B]``.

The evidence set is built over *ordered* tuple pairs, so single-tuple
predicates are evaluated on the first tuple of the pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.core.operators import Operator


class PredicateForm(enum.Enum):
    """Structural form of a predicate (which tuples its two sides reference)."""

    TWO_TUPLE_SAME_COLUMN = "two_tuple_same_column"
    TWO_TUPLE_CROSS_COLUMN = "two_tuple_cross_column"
    SINGLE_TUPLE = "single_tuple"

    def __lt__(self, other: object) -> bool:
        """Order forms by declaration position.

        Predicates are ordered dataclasses; without this, sorting predicates
        that tie on their column and operator fields raises ``TypeError``.
        """
        if not isinstance(other, PredicateForm):
            return NotImplemented
        return _FORM_RANK[self] < _FORM_RANK[other]

    @property
    def spans_two_tuples(self) -> bool:
        """Whether the right-hand side references the second tuple ``t'``."""
        return self is not PredicateForm.SINGLE_TUPLE


_FORM_RANK = {member: position for position, member in enumerate(PredicateForm)}


@dataclass(frozen=True, order=True)
class Predicate:
    """A single comparison predicate ``t[left] op (t|t')[right]``.

    Attributes
    ----------
    left_column:
        Attribute referenced on the first tuple ``t``.
    operator:
        One of the six comparison operators.
    right_column:
        Attribute referenced on the right-hand side.
    form:
        Whether the right-hand side refers to ``t'`` (two-tuple forms) or to
        ``t`` itself (single-tuple form).
    """

    left_column: str
    operator: Operator
    right_column: str
    form: PredicateForm

    def __post_init__(self) -> None:
        if self.form is PredicateForm.TWO_TUPLE_SAME_COLUMN and self.left_column != self.right_column:
            raise ValueError("same-column predicates must reference a single attribute")
        if self.form is not PredicateForm.TWO_TUPLE_SAME_COLUMN and self.left_column == self.right_column:
            raise ValueError("cross-column predicates must reference two distinct attributes")

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    @property
    def complement(self) -> "Predicate":
        """The predicate that holds exactly when this one does not."""
        return Predicate(self.left_column, self.operator.complement, self.right_column, self.form)

    @property
    def group_key(self) -> tuple[str, str, PredicateForm]:
        """Key identifying the column pair + form this predicate belongs to.

        Two predicates with the same group key differ only by their operator;
        the enumeration algorithm removes whole groups from the candidate
        list once one member has been added to the partial hitting set
        (Section 6.2, "differ from u only by the operator").
        """
        return (self.left_column, self.right_column, self.form)

    def implies(self, other: "Predicate") -> bool:
        """Whether this predicate logically implies ``other``.

        Implication only holds between predicates over the same column pair
        and form, and follows the operator implication lattice.
        """
        return self.group_key == other.group_key and self.operator.implies(other.operator)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, left_row: Mapping[str, object], right_row: Mapping[str, object]) -> bool:
        """Evaluate the predicate on an ordered pair of rows.

        ``left_row`` plays the role of ``t`` and ``right_row`` of ``t'``;
        single-tuple predicates only look at ``left_row``.
        """
        left_value = left_row[self.left_column]
        if self.form.spans_two_tuples:
            right_value = right_row[self.right_column]
        else:
            right_value = left_row[self.right_column]
        return self.operator.evaluate(left_value, right_value)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        right_tuple = "t'" if self.form.spans_two_tuples else "t"
        return f"t[{self.left_column}] {self.operator.symbol} {right_tuple}[{self.right_column}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Predicate({self})"


def same_column_predicate(column: str, op: Operator) -> Predicate:
    """Convenience constructor for ``t[column] op t'[column]``."""
    return Predicate(column, op, column, PredicateForm.TWO_TUPLE_SAME_COLUMN)


def cross_column_predicate(left: str, op: Operator, right: str) -> Predicate:
    """Convenience constructor for ``t[left] op t'[right]``."""
    return Predicate(left, op, right, PredicateForm.TWO_TUPLE_CROSS_COLUMN)


def single_tuple_predicate(left: str, op: Operator, right: str) -> Predicate:
    """Convenience constructor for ``t[left] op t[right]``."""
    return Predicate(left, op, right, PredicateForm.SINGLE_TUPLE)
