"""Tests of the serving subsystem: protocol, counters, scheduler, server.

The end-to-end tests boot a real :class:`ViolationServer` on localhost TCP
(via :class:`ServerThread`) and drive it with the shared
:class:`ServeClient`; every served number is cross-checked against the
semantic DC oracles or a fresh library-level :class:`ViolationService` on
the same data.  The push-based read path additionally asserts the
*mechanism*: serving counters never finalizes the store's evidence.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import socket
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.predicate_space import build_predicate_space
from repro.data.relation import running_example
from repro.incremental import EvidenceStore, ViolationService
from repro.serve import (
    AppendScheduler,
    ServeClient,
    ServeError,
    ServerThread,
    ViolationCounters,
)
from repro.serve import protocol
from repro.serve.counters import partial_violation_counts


def plain_rows(relation, indices):
    """Rows as JSON-clean dicts (what a real network client would send)."""
    rows = []
    for index in indices:
        row = {}
        for name, value in relation.row(index).items():
            row[name] = value.item() if hasattr(value, "item") else value
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": 3, "op": "append", "rows": [{"A": 1, "B": "x"}]}
        frame = protocol.encode_frame(message)
        length = protocol.frame_length(frame[: protocol.HEADER.size])
        assert length == len(frame) - protocol.HEADER.size
        assert protocol.decode_payload(frame[protocol.HEADER.size :]) == message

    def test_numpy_values_become_plain_json(self):
        message = {
            "count": np.int64(7),
            "rate": np.float64(0.25),
            "flag": np.bool_(True),
            "scores": np.arange(3, dtype=np.int64),
            "nested": [{"n": np.int32(1)}],
        }
        decoded = protocol.decode_payload(
            protocol.encode_frame(message)[protocol.HEADER.size :]
        )
        assert decoded == {
            "count": 7, "rate": 0.25, "flag": True,
            "scores": [0, 1, 2], "nested": [{"n": 1}],
        }

    def test_oversized_frame_is_refused(self):
        header = protocol.HEADER.pack(1024)
        with pytest.raises(protocol.ProtocolError):
            protocol.frame_length(header, max_frame_bytes=512)

    def test_non_object_payload_is_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"[1, 2, 3]")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"\xff\xfe")

    def test_response_envelopes(self):
        ok = protocol.ok_response(5, value=1)
        assert ok == {"id": 5, "ok": True, "value": 1}
        error = protocol.error_response(5, protocol.BAD_REQUEST, "nope")
        assert error["ok"] is False
        assert error["error"]["code"] == protocol.BAD_REQUEST


# ----------------------------------------------------------------------
# Push-based counters
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mined():
    """Full-relation space, store, and a handful of mined ADCs."""
    relation = running_example()
    space = build_predicate_space(relation)
    store = EvidenceStore(relation, space=space)
    adcs = store.remine(0.05)[:5]
    assert adcs, "the running example must yield ADCs at epsilon=0.05"
    return relation, space, adcs


def finalize_counts(store, constraints):
    """Oracle: per-DC counts off a fresh finalize of the store."""
    service = ViolationService(store, constraints)
    return [service.violations(i).count for i in range(len(constraints))]


class TestViolationCounters:
    def test_seed_matches_finalize(self, mined):
        relation, space, adcs = mined
        store = EvidenceStore(relation.take(range(10)), space=space)
        service = ViolationService(store, adcs)
        counters = ViolationCounters(service.hitting_words, store)
        assert counters.counts().tolist() == finalize_counts(store, adcs)
        assert counters.n_rows == 10

    def test_push_updates_track_every_append_exactly(self, mined):
        relation, space, adcs = mined
        store = EvidenceStore(relation.take(range(6)), space=space)
        service = ViolationService(store, adcs)
        counters = ViolationCounters(service.hitting_words, store)
        for start, stop in [(6, 9), (9, 10), (10, 15)]:
            store.append(relation.take(range(start, stop)))
            # Bit-identical to finalize-on-read, without having finalized.
            assert store._evidence is None
            assert counters.counts().tolist() == finalize_counts(store, adcs)
            assert counters.n_rows == stop
        assert counters.applied_deltas == 3

    def test_snapshot_is_consistent_and_plain(self, mined):
        relation, space, adcs = mined
        store = EvidenceStore(relation, space=space)
        counters = ViolationCounters(
            ViolationService(store, adcs).hitting_words, store
        )
        snapshot = counters.snapshot()
        assert snapshot.n_rows == relation.n_rows
        assert snapshot.total_pairs == relation.n_rows * (relation.n_rows - 1)
        assert snapshot.counts == tuple(counters.counts().tolist())
        for index in range(len(adcs)):
            assert snapshot.rate(index) == snapshot.counts[index] / snapshot.total_pairs

    def test_detach_stops_following(self, mined):
        relation, space, adcs = mined
        store = EvidenceStore(relation.take(range(10)), space=space)
        counters = ViolationCounters(
            ViolationService(store, adcs).hitting_words, store
        )
        before = counters.counts().tolist()
        counters.detach()
        store.append(relation.take(range(10, 15)))
        assert counters.counts().tolist() == before
        assert counters.n_rows == 10

    def test_partial_counts_empty_cases(self, mined):
        relation, space, adcs = mined
        store = EvidenceStore(relation, space=space)
        assert partial_violation_counts(store.partial, []).tolist() == []


# ----------------------------------------------------------------------
# Append scheduler
# ----------------------------------------------------------------------
class TestAppendScheduler:
    def _make(self, relation, space, executor, **kwargs):
        store = EvidenceStore(relation.take(range(8)), space=space)
        lock = asyncio.Lock()
        return store, AppendScheduler(store, lock, executor, **kwargs)

    def test_concurrent_appends_coalesce_into_one_flush(self, mined):
        relation, space, _ = mined

        async def drive():
            with ThreadPoolExecutor(2) as executor:
                store, scheduler = self._make(relation, space, executor)
                batches = [plain_rows(relation, [8 + i]) for i in range(7)]
                results = await asyncio.gather(
                    *[scheduler.append(batch) for batch in batches]
                )
                await scheduler.drain()
                return store, scheduler, results

        store, scheduler, results = asyncio.run(drive())
        assert store.n_rows == 15
        # All seven requests were concurrent, so they committed as one
        # fold: one flush, one generation, coalesced count = 7.
        assert scheduler.flushes == 1
        assert scheduler.coalesced_requests == 7
        assert {r["generation"] for r in results} == {1}
        assert all(r["coalesced"] == 7 and r["appended"] == 1 for r in results)

    def test_sequential_appends_do_not_wait_for_a_window(self, mined):
        relation, space, _ = mined

        async def drive():
            with ThreadPoolExecutor(2) as executor:
                store, scheduler = self._make(relation, space, executor)
                first = await scheduler.append(plain_rows(relation, [8]))
                second = await scheduler.append(plain_rows(relation, [9]))
                return store, scheduler, first, second

        store, scheduler, first, second = asyncio.run(drive())
        assert store.n_rows == 10
        assert scheduler.flushes == 2
        assert (first["generation"], second["generation"]) == (1, 2)

    def test_poisoned_flush_fails_only_its_owner(self, mined):
        relation, space, _ = mined

        async def drive():
            with ThreadPoolExecutor(2) as executor:
                store, scheduler = self._make(relation, space, executor)
                good = plain_rows(relation, [8])
                bad = [{"Name": "x"}]  # missing columns: coercion fails
                results = await asyncio.gather(
                    scheduler.append(good),
                    scheduler.append(bad),
                    scheduler.append(plain_rows(relation, [9])),
                    return_exceptions=True,
                )
                await scheduler.drain()
                return store, scheduler, results

        store, scheduler, results = asyncio.run(drive())
        assert store.n_rows == 10  # both good rows landed
        assert isinstance(results[1], Exception)
        assert not isinstance(results[0], Exception)
        assert not isinstance(results[2], Exception)
        assert scheduler.fallback_flushes >= 1

    def test_empty_append_is_a_no_op(self, mined):
        relation, space, _ = mined

        async def drive():
            with ThreadPoolExecutor(2) as executor:
                store, scheduler = self._make(relation, space, executor)
                return store, await scheduler.append([])

        store, result = asyncio.run(drive())
        assert result == {
            "appended": 0, "n_rows": 8, "generation": 0, "coalesced": 0,
        }
        assert store.generation == 0

    def test_results_match_store_state_and_listeners_fire_once(self, mined):
        relation, space, adcs = mined

        async def drive():
            with ThreadPoolExecutor(2) as executor:
                store, scheduler = self._make(relation, space, executor)
                counters = ViolationCounters(
                    ViolationService(store, adcs).hitting_words, store
                )
                await asyncio.gather(
                    *[scheduler.append(plain_rows(relation, [8 + i])) for i in range(7)]
                )
                await scheduler.drain()
                return store, counters

        store, counters = asyncio.run(drive())
        # One coalesced flush = one delta = one counter update, and the
        # counts still match a fresh rebuild-from-scratch exactly.
        assert counters.applied_deltas == store.generation == 1
        fresh = EvidenceStore(store.relation.copy(), space=space)
        assert counters.counts().tolist() == finalize_counts(fresh, adcs)


# ----------------------------------------------------------------------
# Server end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    thread = ServerThread()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def client(server):
    with ServeClient(*server.address) as client:
        yield client


class TestServerEndToEnd:
    def test_ping(self, client):
        response = client.ping()
        assert response["server"] == "repro-serve"
        assert response["protocol"] == protocol.PROTOCOL_VERSION

    def test_full_tenant_lifecycle_against_oracles(self, server, client, mined):
        relation, space, adcs = mined
        client.create_store("lifecycle", plain_rows(relation, range(12)))
        mined_response = client.remine("lifecycle", epsilon=0.05, limit=4)
        assert mined_response["mined"] == len(mined_response["constraints"]) > 0

        # Mined constraints answer exactly the pairwise oracle's counts.
        state = server.server._stores["lifecycle"]
        initial = relation.take(range(12))
        for index, constraint in enumerate(state.service.constraints):
            served = client.violations("lifecycle", index)
            assert served["count"] == constraint.violation_count(initial)
            assert served["total_pairs"] == 12 * 11

        # Appends are picked up by the counters without finalizing.
        client.append("lifecycle", plain_rows(relation, range(12, 15)))
        for index, constraint in enumerate(state.service.constraints):
            served = client.violations("lifecycle", index)
            assert served["count"] == constraint.violation_count(relation)
            finalized = client.violations("lifecycle", index, mode="finalize")
            assert finalized["count"] == served["count"]

        report = client.report("lifecycle")
        assert [entry["count"] for entry in report["report"]] == [
            constraint.violation_count(relation)
            for constraint in state.service.constraints
        ]
        client.drop_store("lifecycle")
        assert "lifecycle" not in client.ping()["stores"]

    def test_counter_reads_never_finalize(self, server, client, mined):
        relation, space, adcs = mined
        client.create_store("nofinal", plain_rows(relation, range(10)))
        client.remine("nofinal", epsilon=0.05, limit=3)
        state = server.server._stores["nofinal"]
        client.append("nofinal", plain_rows(relation, range(10, 13)))
        client.violations("nofinal", 0)
        client.report("nofinal")
        client.check_batch("nofinal", plain_rows(relation, [0]))
        # The whole read path ran off push counters + delta replay: the
        # finalized-evidence cache was never repopulated after the append.
        assert state.store._evidence is None
        # A snapshot-backed op *does* finalize (and caches).
        client.tuple_scores("nofinal", 0)
        assert state.store._evidence is not None
        client.drop_store("nofinal")

    def test_check_batch_matches_library_service(self, client, mined):
        relation, space, adcs = mined
        client.create_store("admit", plain_rows(relation, range(12)))
        client.remine("admit", epsilon=0.05, limit=4)
        response = client.check_batch("admit", plain_rows(relation, [0, 7, 14]))

        # Mirror the server exactly: store and space built from the seed
        # rows alone, then the same deterministic remine.
        store = EvidenceStore(relation.take(range(12)))
        oracle = ViolationService(store, store.remine(0.05)[:4], epsilon=0.05)
        expected = oracle.check_batch(plain_rows(relation, [0, 7, 14]))
        assert len(response["rows"]) == len(expected) == 3
        for served, admission in zip(response["rows"], expected):
            assert served["rates"] == pytest.approx(list(admission.rates))
            assert served["admissible"] == admission.admissible
        client.drop_store("admit")

    def test_violating_pairs_and_tuple_scores_match_oracle(self, server, client, mined):
        relation, space, adcs = mined
        client.create_store("heavy", plain_rows(relation, range(relation.n_rows)))
        client.remine("heavy", epsilon=0.05, limit=3)
        state = server.server._stores["heavy"]
        for index, constraint in enumerate(state.service.constraints):
            pairs = client.violating_pairs("heavy", index)
            assert sorted(map(tuple, pairs["pairs"])) == sorted(
                constraint.violating_pairs(relation)
            )
            assert pairs["truncated"] is False
            scores = client.tuple_scores("heavy", index, ranking=True)
            expected = np.zeros(relation.n_rows, dtype=np.int64)
            for left, right in constraint.violating_pairs(relation):
                expected[left] += 1
                expected[right] += 1
            assert scores["scores"] == expected.tolist()
        truncated = client.violating_pairs("heavy", 0, limit=1)
        if len(state.service.constraints) and truncated["pairs"]:
            assert len(truncated["pairs"]) <= 1
        client.drop_store("heavy")

    def test_declared_constraints_serve_like_mined_ones(self, client, mined):
        relation, space, adcs = mined
        client.create_store("declared", plain_rows(relation, range(relation.n_rows)))
        # Declare the first mined DC by hand over the wire.
        constraint = adcs[0].constraint
        spec = [
            {
                "left": p.left_column,
                "op": p.operator.value,
                "right": p.right_column,
                "form": p.form.value,
            }
            for p in constraint.predicates
        ]
        response = client.declare("declared", [spec], epsilon=0.05)
        assert response["constraints"] == [str(constraint)]
        served = client.violations("declared", 0)
        assert served["count"] == constraint.violation_count(relation)
        client.drop_store("declared")

    def test_multi_tenant_stores_are_independent(self, client, mined):
        relation, space, adcs = mined
        client.create_store("tenant_a", plain_rows(relation, range(8)))
        client.create_store("tenant_b", plain_rows(relation, range(relation.n_rows)))
        client.remine("tenant_a", epsilon=0.05, limit=2)
        client.remine("tenant_b", epsilon=0.05, limit=2)
        client.append("tenant_a", plain_rows(relation, range(8, 11)))
        stats = client.stats()["stores"]
        assert stats["tenant_a"]["n_rows"] == 11
        assert stats["tenant_b"]["n_rows"] == relation.n_rows
        assert stats["tenant_b"]["generation"] == 0
        client.drop_store("tenant_a")
        client.drop_store("tenant_b")

    def test_concurrent_clients_coalesce_appends(self, server, client, mined):
        relation, space, adcs = mined
        client.create_store("coalesce", plain_rows(relation, range(8)))
        client.remine("coalesce", epsilon=0.1, limit=2)

        def append_one(index):
            with ServeClient(*server.address) as own:
                return own.append("coalesce", plain_rows(relation, [index]))

        with ThreadPoolExecutor(7) as pool:
            results = list(pool.map(append_one, range(8, 15)))
        stats = client.stats()["stores"]["coalesce"]
        assert stats["n_rows"] == 15
        assert stats["append"]["appended_rows"] == 7
        # Wire latency makes perfect 7-way coalescing timing-dependent,
        # but the committed state must be exact regardless of grouping.
        assert stats["append"]["flushes"] <= 7
        assert sum(r["appended"] for r in results) == 7
        # Counters absorbed every committed delta bit-identically.
        state = server.server._stores["coalesce"]
        fresh = EvidenceStore(state.store.relation.copy(), space=space)
        oracle = ViolationService(fresh, state.service.constraints)
        assert state.counters.counts().tolist() == [
            oracle.violations(i).count
            for i in range(len(state.service.constraints))
        ]
        client.drop_store("coalesce")

    def test_error_frames(self, client, mined):
        relation, _, _ = mined
        with pytest.raises(ServeError) as excinfo:
            client.violations("no_such_store", 0)
        assert excinfo.value.code == protocol.UNKNOWN_STORE
        with pytest.raises(ServeError) as excinfo:
            client.request("frobnicate")
        assert excinfo.value.code == protocol.UNKNOWN_OP
        with pytest.raises(ServeError) as excinfo:
            client.create_store("bad", [])
        assert excinfo.value.code == protocol.BAD_REQUEST

        client.create_store("errors", plain_rows(relation, range(8)))
        with pytest.raises(ServeError) as excinfo:
            client.create_store("errors", plain_rows(relation, range(8)))
        assert excinfo.value.code == protocol.STORE_EXISTS
        with pytest.raises(ServeError) as excinfo:
            client.violations("errors", 0)
        assert excinfo.value.code == protocol.NO_CONSTRAINTS
        client.remine("errors", epsilon=0.05, limit=1)
        with pytest.raises(ServeError) as excinfo:
            client.violations("errors", 99)
        assert excinfo.value.code == protocol.BAD_REQUEST
        # The connection survives every error frame.
        assert client.ping()["server"] == "repro-serve"
        client.drop_store("errors")

    def test_malformed_frame_gets_error_then_close(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            payload = b"this is not json"
            sock.sendall(protocol.HEADER.pack(len(payload)) + payload)
            response = protocol.read_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.BAD_REQUEST
            # The server closes the connection after answering.
            assert sock.recv(1) == b""


class TestGracefulDrain:
    def test_stop_commits_pending_appends(self, mined):
        relation, space, _ = mined
        thread = ServerThread(flush_window=0.05)
        try:
            with ServeClient(*thread.address) as client:
                client.create_store("drain", plain_rows(relation, range(8)))
                responses = []
                appender = threading.Thread(
                    target=lambda: responses.append(
                        client.append("drain", plain_rows(relation, [8]))
                    )
                )
                appender.start()
                appender.join(timeout=10)
                state = thread.server._stores["drain"]
        finally:
            thread.stop()
        assert responses and responses[0]["appended"] == 1
        assert state.store.n_rows == 9

    def test_requests_during_drain_get_shutting_down(self, mined):
        relation, _, _ = mined
        thread = ServerThread()
        client = ServeClient(*thread.address)
        try:
            client.create_store("late", plain_rows(relation, range(8)))
            thread.stop()
            with pytest.raises((ServeError, ConnectionError)):
                client.append("late", plain_rows(relation, [8]))
        finally:
            client.close()
            thread.stop()


class TestMainEntryPoint:
    def test_boot_serve_sigterm_drain(self, mined):
        relation, _, _ = mined
        # The subprocess does not inherit pytest's pythonpath ini; point it
        # at the same repro package this process imported.
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(sys.modules["repro"].__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            with ServeClient(host, port) as client:
                client.create_store("cli", plain_rows(relation, range(8)))
                client.remine("cli", epsilon=0.05, limit=2)
                assert client.violations("cli", 0)["count"] >= 0
            proc.send_signal(signal.SIGTERM)
            assert "drained" in proc.stdout.readline()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
