"""Durability through the serving layer: restarts, retries, quotas, chaos.

End-to-end crash safety of :class:`~repro.serve.server.ViolationServer`
with ``--data-dir``: acknowledged appends survive a server restart
bit-identically (violation counts match the constraint's own
``violation_count`` oracle on the surviving rows), lost acknowledgments
are retried exactly-once through the dedup window, timeouts and quotas
surface as typed errors, dropped stores leak nothing, and a real
``kill -9`` of a server subprocess recovers everything it acknowledged.
"""

from __future__ import annotations

import gc
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import weakref
from pathlib import Path

import pytest

from repro.data.relation import Relation, running_example
from repro.durability import FlakyProxy
from repro.durability.journal import plain_rows, relation_types
from repro.serve import ServeClient, ServeError, ServeTimeout, ServerThread

#: Same-column DCs over the running example, valid in its predicate space.
SPECS = [
    [
        {"left": "State", "op": "==", "right": "State",
         "form": "two_tuple_same_column"},
        {"left": "Zip", "op": "!=", "right": "Zip",
         "form": "two_tuple_same_column"},
    ],
    [
        {"left": "Income", "op": "<", "right": "Income",
         "form": "two_tuple_same_column"},
        {"left": "Tax", "op": ">", "right": "Tax",
         "form": "two_tuple_same_column"},
    ],
]


def example_rows() -> tuple[list[dict], dict[str, str]]:
    relation = running_example()
    return plain_rows(relation), relation_types(relation)


def oracle_counts(rows: list[dict], types: dict[str, str]) -> list[int]:
    """Per-DC violating-pair counts straight from the constraint itself."""
    from repro.core.dc import DenialConstraint
    from repro.data.types import ColumnType
    from repro.serve.server import parse_predicate

    relation = Relation.from_records(
        "oracle", rows, {c: ColumnType(t) for c, t in types.items()}
    )
    return [
        DenialConstraint(parse_predicate(p) for p in spec).violation_count(relation)
        for spec in SPECS
    ]


class TestRestartRecovery:
    def test_acknowledged_state_survives_restart(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                client.declare("people", SPECS, epsilon=0.05)
                client.append("people", rows[8:12])
                client.append("people", rows[12:15])
                before = [
                    client.violations("people", dc)["count"]
                    for dc in range(len(SPECS))
                ]
        # Same data dir, fresh server: everything must come back.
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                ping = client.ping()
                assert ping["stores"] == ["people"]
                after = [
                    client.violations("people", dc)["count"]
                    for dc in range(len(SPECS))
                ]
                assert after == before == oracle_counts(rows, types)
                stats = client.stats()
                store_stats = stats["stores"]["people"]
                assert store_stats["n_rows"] == 15
                recovered = store_stats["durability"]["recovered"]
                assert recovered["source"] in ("wal", "snapshot", "snapshot+wal")
                assert stats["durability"]["recovery_failures"] == {}
                # The restored store keeps serving appends durably.
                client.append("people", rows[:2])
                assert client.stats()["stores"]["people"]["n_rows"] == 17

    def test_epsilon_change_survives_restart(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                client.declare("people", SPECS, epsilon=0.05)
                client.set_epsilon("people", 0.42)
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                report = client.report("people")
                # exceeds_epsilon is judged against the journaled 0.42.
                check = client.check_batch("people", rows[8:9])
                assert check["epsilon"] == 0.42
                assert report["report"]  # constraints are installed

    def test_snapshot_compaction_under_small_threshold(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path, snapshot_every_bytes=64) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                for index in range(8, 15):
                    client.append("people", [rows[index]])
                durability = client.stats()["stores"]["people"]["durability"]
                assert durability["snapshots_written"] >= 1
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                assert client.stats()["stores"]["people"]["n_rows"] == 15

    def test_dedup_window_survives_restart(self, tmp_path):
        rows, types = example_rows()
        key = "retry-me-across-restarts"
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                first = client.append("people", rows[8:10], request_key=key)
                assert first.get("deduplicated") is None
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                retried = client.append("people", rows[8:10], request_key=key)
                assert retried["deduplicated"] is True
                assert retried["appended"] == 2
                # Applied exactly once: the row count did not move.
                assert client.stats()["stores"]["people"]["n_rows"] == 10


class TestIdempotentRetry:
    def test_lost_ack_retry_applies_exactly_once(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as setup:
                setup.create_store("people", rows[:8], types)
            # Responses: 0 = the append's ack, dropped *after* the server
            # commits.  The client's idempotent retry reconnects through
            # the proxy and must be answered from the dedup window.
            proxy = FlakyProxy((host, port), drop_responses={0})
            try:
                client = ServeClient(
                    *proxy.address, retries=3, retry_backoff=0.05
                )
                with client:
                    result = client.append("people", rows[8:11])
                    assert result["appended"] == 3
                    assert result.get("deduplicated") is True
                    assert client.reconnects >= 1
                    assert client.stats()["stores"]["people"]["n_rows"] == 11
            finally:
                proxy.close()

    def test_in_flight_duplicate_key_shares_one_commit(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(flush_window=0.2) as (host, port):
            with ServeClient(host, port) as setup:
                setup.create_store("people", rows[:8], types)
            results = []

            def fire() -> None:
                with ServeClient(host, port) as client:
                    results.append(
                        client.append("people", rows[8:10], request_key="dup")
                    )

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServeClient(host, port) as client:
                assert client.stats()["stores"]["people"]["n_rows"] == 10
            assert sum(1 for r in results if not r.get("deduplicated")) == 1
            assert sum(1 for r in results if r.get("deduplicated")) == 2


class TestTimeouts:
    def test_read_timeout_raises_serve_timeout(self):
        # A listener that accepts and then never answers.
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()
        accepted = []

        def accept() -> None:
            try:
                accepted.append(listener.accept()[0])
            except OSError:
                pass

        thread = threading.Thread(target=accept, daemon=True)
        thread.start()
        try:
            with ServeClient(host, port, timeout=0.3) as client:
                with pytest.raises(ServeTimeout):
                    client.ping()
        finally:
            listener.close()
            for sock in accepted:
                sock.close()

    def test_connect_timeout_raises_serve_timeout(self):
        # A bound-but-not-accepting socket with a full backlog makes
        # connects hang; 10.255.255.1 is the classic non-routable fallback.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(0)
        host, port = listener.getsockname()
        try:
            saturating = []
            try:
                for _ in range(16):
                    saturating.append(
                        socket.create_connection((host, port), timeout=0.2)
                    )
            except OSError:
                pass
            with pytest.raises((ServeTimeout, ConnectionError, OSError)):
                ServeClient(host, port, timeout=5.0, connect_timeout=0.2)
        finally:
            listener.close()
            for sock in saturating:
                sock.close()

    def test_retries_zero_fails_fast_on_dead_server(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises(OSError):
            ServeClient("127.0.0.1", port, timeout=0.5)


class TestQuotas:
    def test_max_stores_refused_with_quota_code(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path, max_stores=1) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("first", rows[:4], types)
                with pytest.raises(ServeError) as error:
                    client.create_store("second", rows[:4], types)
                assert error.value.code == "quota_exceeded"
                # Dropping frees the slot.
                client.drop_store("first")
                client.create_store("second", rows[:4], types)

    def test_max_rows_per_store_refuses_overflowing_append(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path, max_rows_per_store=10) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                client.append("people", rows[8:10])  # exactly at the cap
                with pytest.raises(ServeError) as error:
                    client.append("people", rows[10:12])
                assert error.value.code == "quota_exceeded"
                assert client.stats()["stores"]["people"]["n_rows"] == 10
                with pytest.raises(ServeError) as error:
                    client.create_store("huge", rows, types)
                assert error.value.code == "quota_exceeded"

    def test_unsafe_store_name_refused_when_durable(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                for name in ("../escape", ".hidden", "a/b", ""):
                    with pytest.raises(ServeError) as error:
                        client.create_store(name, rows[:4], types)
                    assert error.value.code == "bad_request"


class TestDropStore:
    def test_drop_releases_listeners_journal_and_directory(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                client.declare("people", SPECS, epsilon=0.05)
                client.append("people", rows[8:10])
                assert (Path(tmp_path) / "people" / "wal.log").exists()
                client.drop_store("people")
                assert not (Path(tmp_path) / "people").exists()
                with pytest.raises(ServeError) as error:
                    client.report("people")
                assert error.value.code == "unknown_store"

    def test_repeated_create_drop_cycles_same_name(self, tmp_path):
        rows, types = example_rows()
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                for cycle in range(4):
                    client.create_store("people", rows[:6], types)
                    client.declare("people", SPECS, epsilon=0.05)
                    client.append("people", rows[6 : 8 + cycle])
                    client.drop_store("people")
                    assert not (Path(tmp_path) / "people").exists()
                # A final create still works and persists.
                client.create_store("people", rows[:8], types)
            with ServeClient(host, port) as client:
                assert client.ping()["stores"] == ["people"]
        with ServerThread(data_dir=tmp_path) as (host, port):
            with ServeClient(host, port) as client:
                assert client.stats()["stores"]["people"]["n_rows"] == 8

    def test_dropped_state_is_garbage_collected(self):
        """The counters' append listener must not keep a dropped store alive."""
        import asyncio

        from repro.core.dc import DenialConstraint
        from repro.data.types import ColumnType
        from repro.incremental.serve import ViolationService
        from repro.incremental.store import EvidenceStore
        from repro.serve.counters import ViolationCounters
        from repro.serve.server import StoreState, parse_predicate
        from repro.serve.scheduler import AppendScheduler

        rows, types = example_rows()
        store = EvidenceStore(Relation.from_records(
            "people", rows[:8], {c: ColumnType(t) for c, t in types.items()}
        ))
        loop = asyncio.new_event_loop()
        try:
            lock = asyncio.Lock()
            state = StoreState(
                "people", store,
                AppendScheduler(store, lock, executor=None), lock,
            )
            constraints = [
                DenialConstraint(parse_predicate(p) for p in spec)
                for spec in SPECS
            ]
            service = ViolationService(store, constraints, epsilon=0.05)
            state.service = service
            state.counters = ViolationCounters(service.hitting_words, store)
            ref = weakref.ref(state.counters)
            state.close()  # the drop path
            state = service = None
            gc.collect()
            assert ref() is None, "drop leaked the counters via the listener"
        finally:
            loop.close()


class TestKillDashNine:
    def boot(self, data_dir: Path, extra: list[str] = ()) -> tuple:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve",
             "--listen", "127.0.0.1:0", "--data-dir", str(data_dir),
             *extra],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        banner = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"no banner: {banner!r}"
        return proc, match.group(1), int(match.group(2))

    def test_sigkill_then_restart_recovers_acknowledged_rows(self, tmp_path):
        rows, types = example_rows()
        proc, host, port = self.boot(tmp_path, ["--fsync", "always"])
        try:
            with ServeClient(host, port) as client:
                client.create_store("people", rows[:8], types)
                client.declare("people", SPECS, epsilon=0.05)
                client.append("people", rows[8:12])
                client.append("people", rows[12:15])
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        proc, host, port = self.boot(tmp_path)
        try:
            with ServeClient(host, port) as client:
                counts = [
                    client.violations("people", dc)["count"]
                    for dc in range(len(SPECS))
                ]
                assert counts == oracle_counts(rows, types)
                assert client.stats()["stores"]["people"]["n_rows"] == 15
            # A clean SIGTERM drain still works after recovery.
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
