"""C-extension backend: the compiled kernels behind integer-address FFI.

The shared object built by :mod:`repro.native.build` is loaded through cffi
when available (a direct ``dlopen`` costs ~0.5µs per call when every
argument is a plain integer) and through ctypes otherwise.  All kernel
entry points take ``intptr_t`` addresses, so the hot path never constructs
FFI buffer objects: :class:`CextSearchWorkspace` caches each buffer's
``.ctypes.data`` once at allocation and every per-node call passes cached
integers and scalars only.

The workspace subclasses the numpy reference
(:class:`repro.native.numpy_backend.NumpySearchWorkspace`) for slot
management, views and the cold root setup, overriding just the four
per-node operations with single C calls.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.native import numpy_backend
from repro.native.numpy_backend import DESCENDED, PRUNED, REPLAYED, NumpySearchWorkspace

NAME = "cext"

_CDEF = """
void adc_popcount(intptr_t, int64_t, intptr_t);
void adc_intersection_counts(intptr_t, int64_t, int32_t, int64_t, intptr_t, intptr_t);
int32_t adc_crit_apply(intptr_t, int64_t, int32_t, int64_t, intptr_t, intptr_t, intptr_t);
void adc_crit_undo(intptr_t, int64_t, int32_t, int64_t, intptr_t);
void adc_tile_plane(intptr_t, int64_t, intptr_t, intptr_t, int64_t, intptr_t,
                    int32_t, int64_t, int64_t, int64_t, int64_t, intptr_t);
int64_t adc_unique_rows(intptr_t, int64_t, int64_t, intptr_t, int64_t,
                        intptr_t, intptr_t, intptr_t);
void adc_search_expand(intptr_t, int64_t, int32_t, int64_t, intptr_t, intptr_t,
                       intptr_t, int32_t, int32_t, int64_t, intptr_t, intptr_t,
                       intptr_t, intptr_t);
int64_t adc_search_skip_child(intptr_t, int64_t, int32_t, int64_t, intptr_t,
                              intptr_t, intptr_t, int32_t, intptr_t, int64_t,
                              intptr_t, intptr_t, intptr_t);
int64_t adc_search_hit_prepare(intptr_t, int32_t, intptr_t, int64_t, intptr_t,
                               int32_t, intptr_t, intptr_t, intptr_t, intptr_t);
int32_t adc_search_try_hit(intptr_t, int64_t, int32_t, int64_t, intptr_t,
                           intptr_t, intptr_t, int32_t, intptr_t, intptr_t,
                           intptr_t, intptr_t, int32_t, int64_t, intptr_t,
                           int64_t, int64_t, intptr_t, intptr_t, int64_t,
                           int32_t, intptr_t, int64_t, intptr_t, intptr_t,
                           intptr_t, intptr_t, intptr_t, intptr_t);
"""

_FUNCTIONS = (
    "adc_popcount",
    "adc_intersection_counts",
    "adc_crit_apply",
    "adc_crit_undo",
    "adc_tile_plane",
    "adc_unique_rows",
    "adc_search_expand",
    "adc_search_skip_child",
    "adc_search_hit_prepare",
    "adc_search_try_hit",
)


# The dlopen handles must outlive the extracted function objects: cffi's
# library object dlcloses on garbage collection, unmapping the code pages
# the cached function pointers still reference (a crash that only shows up
# whenever cycle collection happens to run).  Loaded handles are therefore
# pinned for the process lifetime.
_KEEPALIVE: list = []


def _load_cffi(library_path: Path):
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    lib = ffi.dlopen(str(library_path))
    _KEEPALIVE.append((ffi, lib))
    return {name: getattr(lib, name) for name in _FUNCTIONS}


def _load_ctypes(library_path: Path):
    lib = ctypes.CDLL(str(library_path))
    _KEEPALIVE.append(lib)
    intp, i64, i32 = ctypes.c_ssize_t, ctypes.c_int64, ctypes.c_int32
    signatures = {
        "adc_popcount": (None, [intp, i64, intp]),
        "adc_intersection_counts": (None, [intp, i64, i32, i64, intp, intp]),
        "adc_crit_apply": (i32, [intp, i64, i32, i64, intp, intp, intp]),
        "adc_crit_undo": (None, [intp, i64, i32, i64, intp]),
        "adc_tile_plane": (None, [intp, i64, intp, intp, i64, intp, i32,
                                  i64, i64, i64, i64, intp]),
        "adc_unique_rows": (i64, [intp, i64, i64, intp, i64, intp, intp, intp]),
        "adc_search_expand": (None, [intp, i64, i32, i64, intp, intp, intp,
                                     i32, i32, i64, intp, intp, intp, intp]),
        "adc_search_skip_child": (i64, [intp, i64, i32, i64, intp, intp, intp,
                                        i32, intp, i64, intp, intp, intp]),
        "adc_search_hit_prepare": (i64, [intp, i32, intp, i64, intp, i32,
                                         intp, intp, intp, intp]),
        "adc_search_try_hit": (i32, [intp, i64, i32, i64, intp, intp, intp,
                                     i32, intp, intp, intp, intp, i32, i64,
                                     intp, i64, i64, intp, intp, i64, i32,
                                     intp, i64, intp, intp, intp, intp, intp,
                                     intp]),
    }
    functions = {}
    for name, (restype, argtypes) in signatures.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes
        functions[name] = fn
    return functions


def load_functions(library_path: Path) -> dict:
    """Bind the kernel entry points, preferring cffi for call overhead."""
    try:
        return _load_cffi(library_path)
    except ImportError:
        return _load_ctypes(library_path)


def _addr(array: np.ndarray) -> int:
    return array.ctypes.data


# ---------------------------------------------------------------------------
# Flat kernels
# ---------------------------------------------------------------------------
class CKernels:
    """Numpy-signature wrappers over the compiled flat kernels."""

    name = NAME

    def __init__(self, functions: dict) -> None:
        self._fn = functions

    def popcount(self, words: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(words, dtype=np.uint64)
        out = np.empty(flat.shape, dtype=np.uint8)
        self._fn["adc_popcount"](_addr(flat), flat.size, _addr(out))
        return out

    def intersection_counts(self, ev_planes: np.ndarray, mask_words: np.ndarray) -> np.ndarray:
        ev = np.ascontiguousarray(ev_planes, dtype=np.uint64)
        mask = np.ascontiguousarray(mask_words, dtype=np.uint64)
        n_words, n_cols = ev.shape
        out = np.empty(n_cols, dtype=np.uint32)
        self._fn["adc_intersection_counts"](
            _addr(ev), n_cols, n_words, n_cols, _addr(mask), _addr(out)
        )
        return out

    def crit_apply(
        self, rows: np.ndarray, depth: int, new_row: np.ndarray, covers: np.ndarray
    ) -> tuple[bool, np.ndarray]:
        n_words = rows.shape[1]
        new_row = np.ascontiguousarray(new_row, dtype=np.uint64)
        covers = np.ascontiguousarray(covers, dtype=np.uint64)
        removed = np.zeros((depth, n_words), dtype=np.uint64)
        viable = self._fn["adc_crit_apply"](
            _addr(rows), n_words, n_words, depth, _addr(new_row), _addr(covers),
            _addr(removed),
        )
        return bool(viable), removed

    def crit_undo(self, rows: np.ndarray, depth: int, removed: np.ndarray) -> None:
        n_words = rows.shape[1]
        self._fn["adc_crit_undo"](_addr(rows), n_words, n_words, depth, _addr(removed))

    def tile_plane(
        self,
        kinds: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        lookup: np.ndarray,
        i0: int,
        i1: int,
        j0: int,
        j1: int,
        n_words: int,
    ) -> np.ndarray:
        out = np.zeros(((i1 - i0) * (j1 - j0), n_words), dtype=np.uint64)
        self._fn["adc_tile_plane"](
            _addr(kinds), len(kinds), _addr(a), _addr(b), a.shape[1],
            _addr(lookup), n_words, i0, i1, j0, j1, _addr(out),
        )
        return out

    def unique_rows(self, words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        flat = np.ascontiguousarray(words, dtype=np.uint64)
        n, n_words = flat.shape
        if n == 0:
            return flat, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        table_size = 1
        while table_size < 2 * n:
            table_size <<= 1
        table = np.full(table_size, -1, dtype=np.int64)
        uniq = np.empty((n, n_words), dtype=np.uint64)
        inverse = np.empty(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        n_unique = int(
            self._fn["adc_unique_rows"](
                _addr(flat), n, n_words, _addr(table), table_size,
                _addr(uniq), _addr(inverse), _addr(counts),
            )
        )
        uniq = uniq[:n_unique]
        counts = counts[:n_unique]
        # The hash pass yields first-seen order; re-sort the (small) unique
        # set into the canonical lexicographic order and remap.
        keys = tuple(uniq[:, word] for word in range(n_words - 1, -1, -1))
        order = np.lexsort(keys)
        rank = np.empty(n_unique, dtype=np.int64)
        rank[order] = np.arange(n_unique, dtype=np.int64)
        return np.ascontiguousarray(uniq[order]), rank[inverse], counts[order]


# ---------------------------------------------------------------------------
# Search workspace
# ---------------------------------------------------------------------------
class CextSearchWorkspace(NumpySearchWorkspace):
    """Arena workspace whose four per-node operations are single C calls.

    Address tuple layout per slot (cached on the slot, invalidated by the
    grow methods): ``(ev, cin, red, pairs, uncov, cand_in, to_try,
    cand_loop, uncov_bits, elements, covers, crit, child_bits)``.
    """

    def __init__(self, functions: dict, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._expand_c = functions["adc_search_expand"]
        self._skip_c = functions["adc_search_skip_child"]
        self._prepare_c = functions["adc_search_hit_prepare"]
        self._try_hit_c = functions["adc_search_try_hit"]
        self._crit_undo_c = functions["adc_crit_undo"]
        self._contains_p = _addr(self._contains)
        self._group_inv_p = _addr(self._group_inv)
        self._crit_rows_p = _addr(self._crit_rows)
        self._out = np.zeros(4, dtype=np.int64)
        self._out_p = _addr(self._out)
        self._removed_p: list[int] = [0] * (self.n_predicates + 1)

    def _addresses(self, slot) -> tuple:
        addresses = slot.addr
        if addresses is None:
            addresses = slot.addr = (
                _addr(slot.ev), _addr(slot.cin), _addr(slot.red), _addr(slot.pairs),
                _addr(slot.uncov) if slot.uncov is not None else 0,
                _addr(slot.cand_in), _addr(slot.to_try), _addr(slot.cand_loop),
                _addr(slot.uncov_bits),
                _addr(slot.elements) if slot.elements is not None else 0,
                _addr(slot.covers_block) if slot.covers_block is not None else 0,
                _addr(slot.crit_block) if slot.crit_block is not None else 0,
                _addr(slot.child_bits_block) if slot.child_bits_block is not None else 0,
            )
        return addresses

    def expand(
        self, depth: int, n: int, selection: int, call_index: int
    ) -> tuple[int, int, int, int]:
        slot = self._slots[depth]
        a = self._addresses(slot)
        self._expand_c(
            a[0], slot.capacity, self.n_words, n, a[1], a[3], a[5],
            self.n_words, selection, call_index, a[6], a[7], a[2], self._out_p,
        )
        out = self._out.tolist()
        return out[0], out[1], out[2], out[3]

    def skip_child(self, depth: int, n: int, compact: bool) -> int:
        slot = self._slots[depth]
        child = self._slot(depth + 1, n)
        a = self._addresses(slot)
        c = self._addresses(child)
        m = self._skip_c(
            a[0], slot.capacity, self.n_words, n, a[2], a[3], a[4],
            1 if compact else 0, c[0], child.capacity, c[1], c[3], c[4],
        )
        child.cand_in[:] = slot.cand_loop
        child.uncov_bits[:] = slot.uncov_bits
        return m

    def hit_prepare(self, depth: int, n: int, k: int) -> int:
        slot = self._slots[depth]
        if slot.block_capacity < k:
            slot.grow_blocks(self.n_ev_words, max(k, 1))
        a = self._addresses(slot)
        return self._prepare_c(
            a[6], self.n_words, self._contains_p, self.n_ev_words, a[8],
            self.n_ev_words, a[9], a[10], a[11], a[12],
        )

    def try_hit(
        self, depth: int, n: int, position: int, descend: bool
    ) -> tuple[int, int, int, int]:
        slot = self._slots[depth]
        a = self._addresses(slot)
        crit_depth = self._crit_depth
        removed_p = self._removed_p[crit_depth]
        if not removed_p:
            removed_p = self._cext_removed(crit_depth)
        if descend:
            child = self._slot(depth + 1, n)
            c = self._addresses(child)
        else:
            child = slot  # unused: the C kernel never touches the child
            c = a
        status = self._try_hit_c(
            a[0], slot.capacity, self.n_words, n, a[3], a[4], a[7],
            self.n_words, a[9], a[10], a[11], a[12], self.n_ev_words,
            position, self._crit_rows_p, self.n_ev_words, crit_depth,
            removed_p, self._group_inv_p, self.n_words,
            1 if descend else 0, c[0], child.capacity, c[1], c[3], c[4],
            c[5], c[8], self._out_p,
        )
        if status == DESCENDED:
            self._crit_depth = crit_depth + 1
        out = self._out.tolist()
        return status, out[0], out[1], out[2]

    def crit_pop(self) -> None:
        self._crit_depth -= 1
        depth = self._crit_depth
        self._crit_undo_c(
            self._crit_rows_p, self.n_ev_words, self.n_ev_words, depth,
            self._removed_p[depth],
        )

    def _cext_removed(self, crit_depth: int) -> int:
        buffer = np.zeros((max(crit_depth, 1), self.n_ev_words), dtype=np.uint64)
        self._crit_removed[crit_depth] = buffer
        address = _addr(buffer)
        self._removed_p[crit_depth] = address
        return address
