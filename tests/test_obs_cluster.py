"""Cluster-wide observability: trace propagation, worker metrics, federation.

Three promises are under test, each across both transports where it
matters:

* **Distributed traces** — a submission running while a
  :class:`~repro.obs.spans.Span` is ambient ships its wire context to the
  workers and gets back one child span per task, stitched into the
  requesting span's tree with disjoint worker-side segments
  (deserialize/compute/serialize/send) that sum to the worker's wall time,
  plus a coordinator-measured dispatch→result gap that bounds it.
* **Federated metrics** — ``pull_metrics`` snapshots every live worker's
  registry over the fabric without blocking a running fold, dead workers
  degrade gracefully, and :func:`~repro.obs.federate.render_federated`
  exposes each remote series under a ``worker="<id>"`` label.
* **The kill-switch** — with the registry disabled the wire protocol is
  byte-identical to an untraced run (3-tuple task frames, zero pull
  frames) and results stay bit-identical to the serial reference.

Cross-process timing note: the worker stamps its wall *after* its result
send returns, while the coordinator stamps receipt the moment the bytes
land, so under scheduler jitter the gap can undercut the wall by a few
milliseconds — assertions use ``_CLOCK_SLACK`` rather than a strict ≥.
"""

from __future__ import annotations

import json
import re
import time
import urllib.request

import pytest

from tests.test_cluster import make_workload
from tests.test_engine import assert_evidence_identical
from tests.test_obs_serve import random_rows
from repro.cluster import (
    ClusterError,
    LocalCluster,
    TileFoldContext,
    merge_partials_tree,
    shard_tasks,
)
from repro.cluster.worker import (
    MAX_TRACEBACK_CHARS,
    _bounded_traceback,
    _error_info,
    default_worker_id,
)
from repro.obs import Span, merge_snapshots, render_federated
from repro.obs import spans as obs_spans
from repro.obs.federate import prune_idle
from repro.obs.registry import get_registry
from repro.serve import ServeClient, ServerThread

#: Allowed worker-wall overshoot of the dispatch→result gap (see module
#: docstring) — pure cross-process clock-stamp jitter, not queueing.
_CLOCK_SLACK = 0.02

_SEGMENTS = ("deserialize", "compute", "serialize", "send")


def fold_traced(cluster, *, n_rows=24, tile_rows=3, seed=5, delay=0.02):
    """Run one traced cluster fold; returns (span, evidence, reference, n_tasks).

    ``delay`` pads each task's compute so wall times dominate the
    microsecond-scale serialize/send segments and the timing assertions
    are stable under CI jitter.
    """
    relation, space, kernel, tiles, reference = make_workload(
        n_rows=n_rows, tile_rows=tile_rows, seed=seed
    )
    tasks, weights = shard_tasks(tiles, 4)
    context = TileFoldContext(kernel, tiles, delay_per_task=delay)
    span = Span("fold", op="fold")
    with obs_spans.use(span):
        results = cluster.submit(context, tasks, weights)
    evidence = merge_partials_tree(results).finalize(space)
    assert_evidence_identical(evidence, reference)
    return span, evidence, reference, len(tasks)


def assert_child_invariants(child: dict, n_tiles: int) -> None:
    """Every stitched worker child satisfies the cross-wire span contract."""
    assert child["op"] == "cluster_task"
    assert child["worker"]
    assert isinstance(child["task"], list) and len(child["task"]) == 2
    for name in _SEGMENTS:
        assert child["segments"][name] >= 0.0
    wall = child["wall_seconds"]
    total = sum(child["segments"].values())
    assert total == pytest.approx(wall, rel=0.10, abs=1e-4)
    assert child["dispatch_gap_seconds"] >= wall - _CLOCK_SLACK
    assert child["queue_network_seconds"] >= 0.0
    assert child["result_bytes"] > 0
    assert 0 < child["tiles"] <= n_tiles
    assert child["pairs"] > 0


class TestTracePropagation:
    @pytest.mark.parametrize("transport", ["local", "socket"])
    def test_one_child_per_task_with_disjoint_segments(self, transport):
        with LocalCluster(2, transport=transport) as cluster:
            span, _, _, n_tasks = fold_traced(cluster)
        payload = span.jsonable()
        children = payload["children"]
        assert len(children) == n_tasks
        # Every task key appears exactly once (re-issues can't duplicate).
        assert len({tuple(c["task"]) for c in children}) == n_tasks
        relation, _, _, tiles, _ = make_workload(n_rows=24, seed=5)
        for child in children:
            assert_child_invariants(child, n_tiles=len(tiles))
        if transport == "socket":
            # Both subprocess workers actually contributed.
            assert len({c["worker"] for c in children}) == 2

    def test_untraced_submission_ships_no_children(self):
        with LocalCluster(2, transport="local") as cluster:
            relation, space, kernel, tiles, reference = make_workload()
            tasks, weights = shard_tasks(tiles, 4)
            results = cluster.submit(TileFoldContext(kernel, tiles), tasks, weights)
            assert_evidence_identical(
                merge_partials_tree(results).finalize(space), reference
            )

    def test_local_threads_get_distinct_worker_ids(self):
        with LocalCluster(2, transport="local") as cluster:
            span, _, _, _ = fold_traced(cluster)
        workers = {c["worker"] for c in span.children}
        # host:pid would collide across in-process threads; the :w<slot>
        # suffix keeps federation labels (and span attribution) distinct.
        assert all(":w" in w for w in workers)
        assert len(workers) == 2


class TestWorkerMetrics:
    def test_local_worker_metrics_fire_in_shared_registry(self):
        from repro.obs import metrics as obs_metrics

        ok_tasks = obs_metrics.WORKER_TASKS.labels("TileFoldContext", "ok")
        before = ok_tasks.value
        installs = obs_metrics.WORKER_CONTEXT_INSTALLS.value
        with LocalCluster(2, transport="local") as cluster:
            _, _, _, n_tasks = fold_traced(cluster, delay=0.0)
        assert ok_tasks.value - before == n_tasks
        assert obs_metrics.WORKER_CONTEXT_INSTALLS.value - installs >= 2


class TestMetricsFederation:
    def test_pull_merges_worker_labeled_series(self):
        with LocalCluster(2, transport="socket") as cluster:
            fold_traced(cluster, delay=0.0)
            snapshots = cluster.coordinator.pull_metrics()
            assert len(snapshots) == 2
            for snapshot in snapshots:
                assert snapshot["worker"]
                assert snapshot["enabled"] is True
                assert snapshot["age_seconds"] >= 0.0
                assert snapshot["tasks_completed"] >= 1
                assert "repro_worker_tasks_total" in snapshot["families"]
            merged = merge_snapshots(snapshots)
            tasks_family = merged["repro_worker_tasks_total"]
            workers = {s["labels"]["worker"] for s in tasks_family["samples"]}
            assert workers == {s["worker"] for s in snapshots}
            text = render_federated(get_registry(), snapshots)
            for snapshot in snapshots:
                assert (
                    f'repro_worker_tasks_total{{kind="TileFoldContext",'
                    f'outcome="ok",worker="{snapshot["worker"]}"}}' in text
                )
            # One HELP/TYPE header per family even with two workers merged.
            assert text.count("# TYPE repro_worker_tasks_total counter") == 1

    def test_dead_worker_pull_degrades_gracefully(self):
        with LocalCluster(2, transport="socket") as cluster:
            fold_traced(cluster, delay=0.0)
            assert len(cluster.coordinator.pull_metrics()) == 2
            victim = cluster.processes[0]
            victim.terminate()
            victim.wait(timeout=10.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                snapshots = cluster.coordinator.pull_metrics()
                if len(snapshots) == 1:
                    break
                time.sleep(0.1)
            assert len(snapshots) == 1
            stats = cluster.coordinator.worker_stats()
            assert sum(1 for s in stats if s["alive"]) == 1

    def test_prune_idle_drops_zero_series(self):
        families = {
            "repro_x_total": {
                "type": "counter",
                "help": "x",
                "samples": [
                    {"labels": {"k": "a"}, "value": 0.0},
                    {"labels": {"k": "b"}, "value": 3.0},
                ],
            },
        }
        pruned = prune_idle(families)
        assert [s["labels"]["k"] for s in pruned["repro_x_total"]["samples"]] == ["b"]


class TestKillSwitchParity:
    @pytest.fixture()
    def obs_off(self, monkeypatch):
        """Disable the in-process registry AND subprocess workers' env."""
        monkeypatch.setenv("REPRO_OBS", "0")
        registry = get_registry()
        saved = registry.enabled
        registry.enabled = False
        try:
            yield registry
        finally:
            registry.enabled = saved

    def test_disabled_obs_is_byte_and_bit_identical(self, obs_off):
        relation, space, kernel, tiles, reference = make_workload()
        tasks, weights = shard_tasks(tiles, 4)

        def run(with_span: bool):
            with LocalCluster(2, transport="local") as cluster:
                span = Span("fold", op="fold") if with_span else None
                with obs_spans.use(span):
                    results = cluster.submit(
                        TileFoldContext(kernel, tiles), tasks, weights
                    )
                stats = cluster.coordinator.worker_stats()
                sent = sum(s["bytes_sent"] for s in stats)
                pulls = cluster.coordinator.pull_metrics()
            evidence = merge_partials_tree(results).finalize(space)
            return span, evidence, sent, pulls

        span, traced_evidence, traced_bytes, pulls = run(with_span=True)
        assert span.children == []  # no trace context ever left the process
        assert pulls == []  # pull is a no-op: zero frames on the wire
        _, plain_evidence, plain_bytes, _ = run(with_span=False)
        # Same coordinator→worker byte count: the task frames carried no
        # fourth trace-context element even though a span was ambient.
        assert traced_bytes == plain_bytes
        assert_evidence_identical(traced_evidence, reference)
        assert_evidence_identical(plain_evidence, reference)


class HugeErrorContext:
    """Module-level (so it pickles by reference) always-failing context."""

    def run(self, task):
        raise ValueError("boom " + "x" * 100_000)


class TestBoundedErrors:
    def test_bounded_traceback_elides_middle(self):
        try:
            raise ValueError("tail " + "y" * (3 * MAX_TRACEBACK_CHARS))
        except ValueError:
            text = _bounded_traceback()
        assert len(text) <= MAX_TRACEBACK_CHARS + 64
        assert "chars truncated" in text

    def test_error_info_is_structured_and_capped(self):
        info = _error_info("w1", ("s", 3), ValueError("z" * 10_000))
        assert info["worker"] == "w1"
        assert info["task"] == ["s", 3]
        assert len(info["error"]) <= 600
        assert isinstance(info["traceback"], str)

    def test_worker_failure_raises_bounded_cluster_error(self):
        # Local transport only: the context class lives in this test module,
        # which worker *subprocesses* can't import — but LocalTransport still
        # round-trips every frame through pickle, so the bounded error
        # frame's wire shape is what's exercised either way.
        with LocalCluster(2, transport="local") as cluster:
            with pytest.raises(ClusterError) as excinfo:
                cluster.submit(HugeErrorContext(), [(0, 1)])
        message = str(excinfo.value)
        assert "task failed on worker" in message
        assert "ValueError" in message
        # The 100k-char exception payload arrived middle-elided.
        assert len(message) <= MAX_TRACEBACK_CHARS + 1024
        assert "chars truncated" in message


class TestServeOverCluster:
    """The full stack: traced serve appends over real socket workers."""

    def test_traced_append_and_federated_exposure(self, tmp_path):
        with LocalCluster(2, transport="socket") as cluster:
            thread = ServerThread(
                data_dir=tmp_path, cluster=cluster, metrics_port=0
            )
            with thread as (host, port):
                with ServeClient(host, port, timeout=120.0) as client:
                    client.create_store("tenant", random_rows(150, seed=1))
                    result = client.append(
                        "tenant", random_rows(150, seed=2), trace=True
                    )
                    trace = result["trace"]
                    children = trace["children"]
                    assert children  # ≥1 worker child per dispatched task
                    assert len({tuple(c["task"]) for c in children}) == len(children)
                    for child in children:
                        wall = child["wall_seconds"]
                        total = sum(child["segments"].values())
                        assert total == pytest.approx(wall, rel=0.10, abs=1e-4)
                        assert (
                            child["dispatch_gap_seconds"] >= wall - _CLOCK_SLACK
                        )
                    assert "cluster_submit" in trace["detail"]

                    # Wire op: federated text exposition + per-worker list.
                    metrics = client.metrics(format="text")
                    workers = metrics["workers"]
                    assert len(workers) == 2
                    for snapshot in workers:
                        assert (
                            f'worker="{snapshot["worker"]}"' in metrics["text"]
                        )
                    assert "repro_worker_tasks_total" in metrics["text"]

                    # Stats: per-worker health via the coordinator.
                    stats = client.stats()
                    cluster_stats = stats["cluster"]
                    assert cluster_stats["alive_workers"] == 2
                    assert len(cluster_stats["workers"]) == 2
                    for entry in cluster_stats["workers"]:
                        assert entry["alive"] is True
                        assert entry["bytes_sent"] > 0

                    # HTTP scrape federates too, and /healthz answers.
                    address = thread.metrics_address
                    base = f"http://{address[0]}:{address[1]}"
                    with urllib.request.urlopen(
                        f"{base}/metrics", timeout=10.0
                    ) as response:
                        body = response.read().decode("utf-8")
                    worker_ids = {s["worker"] for s in workers}
                    for worker_id in worker_ids:
                        assert re.search(
                            r"repro_worker_tasks_total\{[^}]*"
                            + re.escape(f'worker="{worker_id}"'),
                            body,
                        )
                    with urllib.request.urlopen(
                        f"{base}/healthz", timeout=10.0
                    ) as response:
                        assert response.status == 200
                        assert response.headers["Content-Type"].startswith(
                            "application/json"
                        )
                        health = json.loads(response.read().decode("utf-8"))
                    assert health["status"] == "ok"
                    assert health["stores"] == 1
                    assert health["recovery_failures"] == 0
                    assert health["uptime_seconds"] >= 0.0
