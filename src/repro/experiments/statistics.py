"""Table 4 — dataset statistics."""

from __future__ import annotations

from repro.analysis.metrics import dataset_statistics
from repro.experiments.config import ExperimentConfig


def table4_statistics(config: ExperimentConfig) -> list[dict[str, object]]:
    """One row per dataset: #tuples, #attributes, #golden DCs (Table 4)."""
    rows = []
    for name in config.datasets:
        dataset = config.dataset(name)
        rows.append(dataset_statistics(dataset))
    return rows
