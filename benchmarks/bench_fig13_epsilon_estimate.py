"""Figure 13 — average (epsilon - p_hat) over discovered ADCs per sample size."""

from conftest import report

from repro.experiments import figure13_estimator_gap


def test_figure13_epsilon_minus_phat(benchmark, config):
    restricted = config.restricted(("tax", "stock", "hospital", "voter"))
    rows = benchmark.pedantic(figure13_estimator_gap, args=(restricted,), iterations=1, rounds=1)
    report("Figure 13: average epsilon - p_hat over discovered ADCs", rows)
    assert all(0.0 <= row["avg_epsilon_minus_phat"] <= restricted.epsilon for row in rows)
