"""Coalescing append scheduler.

Delta evidence construction has a fixed per-commit overhead (kernel
preparation is ``O(n)``, and every commit pays a partial rebase/merge), so
ten concurrent one-row appends cost far more as ten folds than as one
ten-row fold.  :class:`AppendScheduler` exploits that: concurrent
``append`` requests against one store are parked in a pending list, and a
single flusher task commits *everything pending* as one combined batch —
one :meth:`EvidenceStore.append`, one delta-tile fold, one counter update,
one generation bump — then parcels the result back to every waiter.

Semantics:

* Requests in one flush commit atomically and observe the same
  post-commit generation; requests never commit out of arrival order.
* A poisoned flush (one request's rows fail type coercion) falls back to
  committing each request separately, so one bad batch fails alone
  instead of failing its innocent flush-mates — at the cost of the
  coalescing win on that flush only.
* ``max_pending_rows`` bounds the parked rows; excess appenders wait
  (backpressure propagates to the connection's read loop, which stops
  reading frames — the network peer slows down instead of the server
  ballooning).

The scheduler never blocks the event loop: the fold runs in the server's
executor while the store's async lock is held, which is also what keeps
commits serialized against the heavyweight read ops.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.spans import Span
from repro.serve.protocol import QuotaExceeded

if TYPE_CHECKING:
    from repro.durability.journal import DedupWindow, StoreJournal
    from repro.incremental.store import EvidenceStore

Row = Mapping[str, object]

# One parked append request: rows, waiter, idempotency key, optional trace
# span, and the perf_counter instant it was parked (for the queue segment).
_Entry = tuple[list[Row], asyncio.Future, "str | None", "Span | None", float]


class AppendScheduler:
    """Batch concurrent appends to one store into single delta folds.

    Parameters
    ----------
    store:
        The evidence store commits apply to.
    lock:
        The store's async lock (shared with the server's heavyweight read
        ops); held across every commit.
    executor:
        Where the blocking fold runs.
    flush_window:
        Seconds a flush waits for more requests to coalesce.  ``0.0``
        (default) still yields to the event loop once, so requests that
        are already queued coalesce for free; positive values trade
        latency for bigger flushes.
    max_pending_rows:
        Parked-row bound; appenders past it wait for the next flush.
    max_rows:
        Optional per-tenant row quota: an append that would grow the store
        (plus everything already parked) past it is refused with
        :class:`~repro.serve.protocol.QuotaExceeded` instead of parked.
    journal:
        Optional :class:`~repro.durability.journal.StoreJournal`.  Each
        flush's batch is journaled (and fsynced) inside the store's
        ``pre_commit`` hook — write-ahead of the in-memory commit, and
        therefore of every acknowledgment the flush produces.  The flush
        window *is* the commit+fsync unit: one coalesced flush pays one
        record and one fsync.
    dedup:
        Optional :class:`~repro.durability.journal.DedupWindow` giving
        keyed appends exactly-once semantics across retries and restarts.
    """

    def __init__(
        self,
        store: "EvidenceStore",
        lock: asyncio.Lock,
        executor: Executor,
        flush_window: float = 0.0,
        max_pending_rows: int = 100_000,
        max_rows: int | None = None,
        journal: "StoreJournal | None" = None,
        dedup: "DedupWindow | None" = None,
    ) -> None:
        if flush_window < 0:
            raise ValueError("flush_window must be >= 0")
        if max_pending_rows < 1:
            raise ValueError("max_pending_rows must be positive")
        self._store = store
        self._lock = lock
        self._executor = executor
        self.flush_window = float(flush_window)
        self.max_pending_rows = int(max_pending_rows)
        self.max_rows = None if max_rows is None else int(max_rows)
        self.journal = journal
        self.dedup = dedup
        self._store_label = store.relation.name
        self._pending: list[_Entry] = []
        self._pending_rows = 0
        self._space: asyncio.Condition = asyncio.Condition()
        self._flusher: asyncio.Task | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self.flushes = 0
        self.coalesced_requests = 0
        self.appended_rows = 0
        self.fallback_flushes = 0

    @property
    def pending_requests(self) -> int:
        """Requests parked for the next flush (load signal for ``stats``)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    async def append(
        self,
        rows: Sequence[Row],
        request_key: str | None = None,
        span: Span | None = None,
    ) -> dict[str, object]:
        """Park ``rows`` for the next flush; resolves once committed.

        Returns ``{"appended", "n_rows", "generation", "coalesced"}`` for
        the flush that carried the request.  Raises whatever the store's
        append raised for *this request's* rows (flush-mates unaffected).

        ``request_key`` makes the append idempotent: a key already in the
        dedup window returns the original commit's result (marked
        ``"deduplicated": true``) without committing again, and a key
        whose first attempt is still in flight awaits that same commit —
        the retry semantics clients need when an acknowledgment is lost.
        """
        rows = list(rows)
        if not rows:
            return {
                "appended": 0,
                "n_rows": self._store.n_rows,
                "generation": self._store.generation,
                "coalesced": 0,
            }
        if request_key is not None and self.dedup is not None:
            previous = self.dedup.get(request_key)
            if previous is not None:
                return {**previous, "deduplicated": True}
            pending = self._inflight.get(request_key)
            if pending is not None:
                # The first attempt is mid-commit; share its outcome (and
                # shield it — a retry's disconnect must not cancel it).
                result = await asyncio.shield(pending)
                return {**result, "deduplicated": True}
        if (
            self.max_rows is not None
            and self._store.n_rows + self._pending_rows + len(rows) > self.max_rows
        ):
            raise QuotaExceeded(
                f"append of {len(rows)} rows would exceed the store's "
                f"{self.max_rows}-row quota "
                f"({self._store.n_rows} committed, {self._pending_rows} pending)"
            )
        async with self._space:
            while self._pending_rows >= self.max_pending_rows:
                await self._space.wait()
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending.append(
                (rows, future, request_key, span, time.perf_counter())
            )
            self._pending_rows += len(rows)
            obs_metrics.SERVE_PENDING_ROWS.set_labels(
                self._store_label, value=self._pending_rows
            )
            if request_key is not None:
                self._inflight[request_key] = future
            if self._flusher is None or self._flusher.done():
                self._flusher = asyncio.create_task(self._flush_loop())
        return await future

    async def drain(self) -> None:
        """Wait until every parked request has committed (shutdown path)."""
        while True:
            flusher = self._flusher
            if flusher is None or flusher.done():
                async with self._space:
                    if not self._pending:
                        return
                await asyncio.sleep(0)
                continue
            await asyncio.shield(flusher)

    # ------------------------------------------------------------------
    # Flush side
    # ------------------------------------------------------------------
    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            # The window lets concurrent requests pile up; even 0 yields
            # once, so whatever is already scheduled on the loop lands in
            # this flush instead of the next.
            await asyncio.sleep(self.flush_window)
            async with self._space:
                batch, self._pending = self._pending, []
                self._pending_rows = 0
                obs_metrics.SERVE_PENDING_ROWS.set_labels(
                    self._store_label, value=0
                )
                self._space.notify_all()
            if batch:
                async with self._lock:
                    outcomes = await loop.run_in_executor(
                        self._executor, self._commit, batch
                    )
                for future, outcome in outcomes:
                    if future.done():
                        continue  # waiter gave up (connection died)
                    if isinstance(outcome, BaseException):
                        future.set_exception(outcome)
                    else:
                        future.set_result(outcome)
                for _, future, key, _, _ in batch:
                    if key is not None and self._inflight.get(key) is future:
                        del self._inflight[key]
            async with self._space:
                if not self._pending:
                    self._flusher = None
                    return

    def _journal_hook(self, rows: list[Row], requests: list[list[object]]):
        """The ``pre_commit`` hook journaling one commit, or ``None``.

        Runs inside :meth:`EvidenceStore.append` after the batch is
        validated but before any state swaps in: the record is written and
        fsynced first, so a journal failure fails the append with the
        store untouched, and a crash after the hook replays to exactly the
        committed state.
        """
        journal = self.journal
        if journal is None:
            return None
        return lambda n_new: journal.log_append(rows, requests)

    def _record_results(
        self, requests: list[list[object]], result_for: dict
    ) -> None:
        """Remember keyed requests' results for idempotent retries."""
        if self.dedup is None:
            return
        for key, n_rows in requests:
            if key is not None:
                self.dedup.record(key, dict(result_for, appended=int(n_rows)))

    def _commit(self, batch: list[_Entry]) -> list[tuple[asyncio.Future, object]]:
        """Apply one flush on the executor thread; never raises.

        The combined commit is tried first (one fold, one journal record,
        one fsync for the whole flush); if the store rejects it — one
        request's rows failed coercion, and the store's atomic append
        rolled everything back — each request is retried alone so the
        failure stays with its owner (each surviving request then journals
        its own record, keeping replayed generation numbers in step).
        """
        store = self._store
        label = self._store_label
        self.flushes += 1
        self.coalesced_requests += len(batch)
        commit_start = time.perf_counter()
        traced = [span for _, _, _, span, _ in batch if span is not None]
        for _, _, _, span, enqueued_at in batch:
            if span is not None:
                span.add_segment("queue", commit_start - enqueued_at)
        combined: list[Row] = [row for rows, _, _, _, _ in batch for row in rows]
        requests = [[key, len(rows)] for rows, _, key, _, _ in batch]
        obs_metrics.SERVE_FLUSHES.inc_labels(label)
        obs_metrics.SERVE_BATCH_ROWS.observe_labels(label, value=len(combined))
        obs_metrics.SERVE_BATCH_REQUESTS.observe_labels(label, value=len(batch))
        # One ambient span collects the flush's fold/fsync/commit segments;
        # they are copied to every traced flush-mate (each waited on the
        # whole combined commit, so the decomposition is theirs too).
        collector = Span("flush", op="flush", store=label) if traced else None
        try:
            with obs_spans.use(collector):
                store.append(
                    combined, pre_commit=self._journal_hook(combined, requests)
                )
        except Exception as combined_error:
            if len(batch) == 1:
                # The combined batch *is* the lone request; the failure is
                # its answer (the atomic append left the store untouched).
                return [(batch[0][1], combined_error)]
            self.fallback_flushes += 1
            obs_metrics.SERVE_FALLBACK_FLUSHES.inc_labels(label)
            outcomes: list[tuple[asyncio.Future, object]] = []
            for rows, future, key, span, _ in batch:
                try:
                    with obs_spans.use(span):
                        appended = store.append(
                            rows,
                            pre_commit=self._journal_hook(rows, [[key, len(rows)]]),
                        )
                except Exception as error:
                    outcomes.append((future, error))
                else:
                    self.appended_rows += appended
                    result = {
                        "appended": appended,
                        "n_rows": store.n_rows,
                        "generation": store.generation,
                        "coalesced": 1,
                    }
                    self._record_results([[key, appended]], result)
                    outcomes.append((future, result))
            self._maybe_snapshot()
            return outcomes
        if collector is not None:
            for span in traced:
                for name, seconds in collector.segments.items():
                    span.add_segment(name, seconds)
                for name, seconds in collector.detail.items():
                    span.add_detail(name, seconds)
                for child in collector.children:
                    span.add_child(child)
        self.appended_rows += len(combined)
        base = {
            "n_rows": store.n_rows,
            "generation": store.generation,
            "coalesced": len(batch),
        }
        self._record_results(requests, base)
        self._maybe_snapshot()
        return [
            (future, {"appended": len(rows), **base})
            for rows, future, _, _, _ in batch
        ]

    def _maybe_snapshot(self) -> None:
        """Compact the journal when its WAL has outgrown the threshold.

        Called on the executor thread right after a commit, store lock
        held, so the snapshot sees a quiescent store.  A snapshot failure
        is deliberately swallowed: the WAL is intact, so durability holds
        — compaction just retries after the next flush.
        """
        if self.journal is None:
            return
        try:
            self.journal.maybe_snapshot(self._store, self.dedup)
        except Exception:  # noqa: BLE001 - compaction is best-effort
            pass
