/* Compiled kernels of the ADC hot paths.
 *
 * Every function here mirrors, bit for bit, a pure-numpy reference in
 * repro.native.numpy_backend — the dispatch layer verifies the two against
 * each other on random inputs before trusting this library, and the repo's
 * enumeration/engine invariant suites assert end-to-end output identity.
 *
 * Conventions shared by all kernels:
 *   - Evidence planes are transposed word planes: shape (n_words, E),
 *     row stride `stride` in *elements* (rows may be views of a wider
 *     arena buffer, so stride >= E; within a row elements are contiguous).
 *   - Bit b of a packed bitset lives at word b / 64, bit b % 64.
 *   - All pointers arrive as intptr_t so the Python side can pass cached
 *     integer addresses without per-call FFI casts.
 *
 * The search_* family implements the per-node work of the ADCEnum explicit
 * stack (see repro.core.adc_enum): each call fuses what used to be a dozen
 * small numpy dispatches into one pass over the node's arrays.
 */

#include <stdint.h>
#include <string.h>

#define POPCOUNT(x) ((uint64_t)__builtin_popcountll(x))

/* ------------------------------------------------------------------ */
/* Flat kernels                                                        */
/* ------------------------------------------------------------------ */

/* Per-element popcount of a contiguous uint64 buffer (uint8 out, matching
 * numpy.bitwise_count). */
void adc_popcount(intptr_t words_p, int64_t n, intptr_t out_p)
{
    const uint64_t *words = (const uint64_t *)words_p;
    uint8_t *out = (uint8_t *)out_p;
    for (int64_t i = 0; i < n; i++)
        out[i] = (uint8_t)POPCOUNT(words[i]);
}

/* Fused |evidence ∩ mask| over a transposed (n_words, E) plane: one pass
 * per word row, accumulating uint32 counts. */
void adc_intersection_counts(intptr_t ev_p, int64_t stride, int32_t n_words,
                             int64_t n_cols, intptr_t mask_p, intptr_t out_p)
{
    const uint64_t *ev = (const uint64_t *)ev_p;
    const uint64_t *mask = (const uint64_t *)mask_p;
    uint32_t *out = (uint32_t *)out_p;
    memset(out, 0, (size_t)n_cols * sizeof(uint32_t));
    for (int32_t w = 0; w < n_words; w++) {
        uint64_t m = mask[w];
        if (!m)
            continue;
        const uint64_t *row = ev + (int64_t)w * stride;
        for (int64_t e = 0; e < n_cols; e++)
            out[e] += (uint32_t)POPCOUNT(row[e] & m);
    }
}

/* CriticalityPlanes.apply as one fused pass: strip `covers` from every
 * member row (recording the removed bits), test viability, install the new
 * row at `depth`.  Returns 1 when every previous member keeps a bit. */
int32_t adc_crit_apply(intptr_t rows_p, int64_t stride, int32_t n_words,
                       int64_t depth, intptr_t new_row_p, intptr_t covers_p,
                       intptr_t removed_p)
{
    uint64_t *rows = (uint64_t *)rows_p;
    const uint64_t *new_row = (const uint64_t *)new_row_p;
    const uint64_t *covers = (const uint64_t *)covers_p;
    uint64_t *removed = (uint64_t *)removed_p;
    int32_t viable = 1;
    for (int64_t d = 0; d < depth; d++) {
        uint64_t *row = rows + d * stride;
        uint64_t *rem = removed + d * (int64_t)n_words;
        uint64_t any = 0;
        for (int32_t w = 0; w < n_words; w++) {
            uint64_t r = row[w] & covers[w];
            rem[w] = r;
            row[w] ^= r;
            any |= row[w];
        }
        if (!any)
            viable = 0;
    }
    memcpy(rows + depth * stride, new_row, (size_t)n_words * sizeof(uint64_t));
    return viable;
}

/* CriticalityPlanes.undo: restore the removed bits of every member row. */
void adc_crit_undo(intptr_t rows_p, int64_t stride, int32_t n_words,
                   int64_t depth, intptr_t removed_p)
{
    uint64_t *rows = (uint64_t *)rows_p;
    const uint64_t *removed = (const uint64_t *)removed_p;
    for (int64_t d = 0; d < depth; d++) {
        uint64_t *row = rows + d * stride;
        const uint64_t *rem = removed + d * (int64_t)n_words;
        for (int32_t w = 0; w < n_words; w++)
            row[w] |= rem[w];
    }
}

/* ------------------------------------------------------------------ */
/* Tile kernel                                                         */
/* ------------------------------------------------------------------ */

/* One fused pass over a (i1-i0) x (j1-j0) tile of the ordered-pair matrix.
 *
 * Group g's order category for pair (i, j) is derived from two per-row
 * float64 vectors a and b (rows of the (G, n_rows) planes at stride
 * `row_stride`):
 *   kind 0 (single-tuple): category = (int)a[i]          (b unused)
 *   kind 1 (numeric pair):  sign(a[i] - b[j]) + 1        (LESS/EQUAL/GREATER)
 *   kind 2 (string pair):   a[i] == b[j] ? EQUAL : LESS
 * The pair's evidence words are the OR of lookup[g, category, :] over all
 * groups; `out` is the (n_pairs, n_words) plane, n_pairs = tile area,
 * pair index p = (i - i0) * (j1 - j0) + (j - j0).
 */
void adc_tile_plane(intptr_t kinds_p, int64_t n_groups, intptr_t a_p,
                    intptr_t b_p, int64_t row_stride, intptr_t lookup_p,
                    int32_t n_words, int64_t i0, int64_t i1, int64_t j0,
                    int64_t j1, intptr_t out_p)
{
    const int32_t *kinds = (const int32_t *)kinds_p;
    const double *a = (const double *)a_p;
    const double *b = (const double *)b_p;
    const uint64_t *lookup = (const uint64_t *)lookup_p;
    uint64_t *out = (uint64_t *)out_p;
    int64_t width = j1 - j0;
    for (int64_t i = i0; i < i1; i++) {
        uint64_t *out_row = out + (i - i0) * width * (int64_t)n_words;
        for (int64_t g = 0; g < n_groups; g++) {
            const double *ga = a + g * row_stride;
            const double *gb = b + g * row_stride;
            const uint64_t *glookup = lookup + g * 3 * (int64_t)n_words;
            int32_t kind = kinds[g];
            if (kind == 0) {
                /* Single-tuple: one category for the whole row of pairs. */
                const uint64_t *cat_words =
                    glookup + (int64_t)ga[i] * n_words;
                uint64_t *o = out_row;
                for (int64_t j = j0; j < j1; j++, o += n_words)
                    for (int32_t w = 0; w < n_words; w++)
                        o[w] |= cat_words[w];
            } else if (kind == 1) {
                double left = ga[i];
                uint64_t *o = out_row;
                for (int64_t j = j0; j < j1; j++, o += n_words) {
                    double d = left - gb[j];
                    int64_t cat = (d < 0.0) ? 0 : ((d == 0.0) ? 1 : 2);
                    const uint64_t *cat_words = glookup + cat * n_words;
                    for (int32_t w = 0; w < n_words; w++)
                        o[w] |= cat_words[w];
                }
            } else {
                double left = ga[i];
                uint64_t *o = out_row;
                for (int64_t j = j0; j < j1; j++, o += n_words) {
                    int64_t cat = (left == gb[j]) ? 1 : 0;
                    const uint64_t *cat_words = glookup + cat * n_words;
                    for (int32_t w = 0; w < n_words; w++)
                        o[w] |= cat_words[w];
                }
            }
        }
    }
}

/* Hash-deduplicate the rows of a contiguous (n, w) uint64 plane.
 *
 * `table` is an open-addressing slot->unique-index map of power-of-two
 * size, pre-filled with -1 by the caller.  First-seen unique rows are
 * appended to `uniq`; `inverse[r]` is row r's unique index and `counts[u]`
 * its multiplicity.  Returns the number of unique rows.  Uniques come out
 * in first-seen order — the Python wrapper re-sorts the (small) unique set
 * into the canonical lexicographic order and remaps inverse/counts, so the
 * hash order never leaks out. */
int64_t adc_unique_rows(intptr_t words_p, int64_t n, int64_t w,
                        intptr_t table_p, int64_t table_size,
                        intptr_t uniq_p, intptr_t inverse_p, intptr_t counts_p)
{
    const uint64_t *words = (const uint64_t *)words_p;
    int64_t *table = (int64_t *)table_p;
    uint64_t *uniq = (uint64_t *)uniq_p;
    int64_t *inverse = (int64_t *)inverse_p;
    int64_t *counts = (int64_t *)counts_p;
    const uint64_t mask = (uint64_t)table_size - 1;
    int64_t n_unique = 0;

    for (int64_t r = 0; r < n; r++) {
        const uint64_t *row = words + r * w;
        /* FNV-1a over the row's words. */
        uint64_t h = 1469598103934665603ULL;
        for (int64_t k = 0; k < w; k++) {
            h ^= row[k];
            h *= 1099511628211ULL;
        }
        uint64_t slot = h & mask;
        for (;;) {
            int64_t u = table[slot];
            if (u < 0) {
                table[slot] = n_unique;
                memcpy(uniq + n_unique * w, row, (size_t)w * sizeof(uint64_t));
                counts[n_unique] = 1;
                inverse[r] = n_unique;
                n_unique++;
                break;
            }
            const uint64_t *candidate = uniq + u * w;
            int64_t k = 0;
            while (k < w && candidate[k] == row[k])
                k++;
            if (k == w) {
                counts[u]++;
                inverse[r] = u;
                break;
            }
            slot = (slot + 1) & mask;
        }
    }
    return n_unique;
}

/* ------------------------------------------------------------------ */
/* ADCEnum search-node kernels                                         */
/* ------------------------------------------------------------------ */

/* Node expansion: pick the chosen evidence, derive the skip branch's
 * candidate planes and the reduced overlap counts, and total the pairs of
 * the evidences the skip branch would doom.
 *
 * Inputs are the node's threaded state: ev (n_words, E) plane (row stride
 * `stride`), cin (uint32 candidate-overlap counts), pairs (int64 pair
 * multiplicities), cand (n_cand_words input candidate plane).  Outputs:
 * to_try = cand ∩ chosen, cand_loop = cand \ chosen, red = cin - |ev ∩
 * to_try| per evidence.  out_scalars = {chosen, n_selectable, lost_pairs,
 * |to_try|} — the last so the caller can size the hit-loop blocks without
 * another popcount pass.
 *
 * Selection 0 = max overlap, 1 = min overlap (both first-index tie-break,
 * zero-count evidences never selectable), 2 = pseudo-random
 * (selectable[call_index % n_selectable]).
 */
void adc_search_expand(intptr_t ev_p, int64_t stride, int32_t n_words,
                       int64_t n_cols, intptr_t cin_p, intptr_t pairs_p,
                       intptr_t cand_p, int32_t n_cand_words,
                       int32_t selection, int64_t call_index,
                       intptr_t to_try_p, intptr_t cand_loop_p,
                       intptr_t red_p, intptr_t out_scalars_p)
{
    const uint64_t *ev = (const uint64_t *)ev_p;
    const uint32_t *cin = (const uint32_t *)cin_p;
    const int64_t *pairs = (const int64_t *)pairs_p;
    const uint64_t *cand = (const uint64_t *)cand_p;
    uint64_t *to_try = (uint64_t *)to_try_p;
    uint64_t *cand_loop = (uint64_t *)cand_loop_p;
    uint32_t *red = (uint32_t *)red_p;
    int64_t *out = (int64_t *)out_scalars_p;

    int64_t n_sel = 0;
    int64_t chosen = -1;
    if (selection == 2) {
        for (int64_t e = 0; e < n_cols; e++)
            if (cin[e])
                n_sel++;
        if (n_sel) {
            int64_t target = call_index % n_sel;
            for (int64_t e = 0; e < n_cols; e++)
                if (cin[e] && target-- == 0) {
                    chosen = e;
                    break;
                }
        }
    } else {
        uint32_t best = 0;
        for (int64_t e = 0; e < n_cols; e++) {
            uint32_t c = cin[e];
            if (!c)
                continue;
            n_sel++;
            if (chosen < 0 || (selection == 0 ? c > best : c < best)) {
                best = c;
                chosen = e;
            }
        }
    }
    out[0] = chosen;
    out[1] = n_sel;
    out[2] = 0;
    out[3] = 0;
    if (chosen < 0)
        return;

    int64_t n_to_try = 0;
    for (int32_t w = 0; w < n_cand_words; w++) {
        uint64_t chosen_word = ev[(int64_t)w * stride + chosen];
        to_try[w] = cand[w] & chosen_word;
        cand_loop[w] = cand[w] & ~chosen_word;
        n_to_try += (int64_t)POPCOUNT(to_try[w]);
    }
    out[3] = n_to_try;
    memcpy(red, cin, (size_t)n_cols * sizeof(uint32_t));
    for (int32_t w = 0; w < n_words; w++) {
        uint64_t m = to_try[w];
        if (!m)
            continue;
        const uint64_t *row = ev + (int64_t)w * stride;
        for (int64_t e = 0; e < n_cols; e++)
            red[e] -= (uint32_t)POPCOUNT(row[e] & m);
    }
    int64_t lost = 0;
    for (int64_t e = 0; e < n_cols; e++)
        if (!red[e])
            lost += pairs[e];
    out[2] = lost;
}

/* Skip-branch child state.  With compact != 0 only evidences whose reduced
 * overlap is still positive survive (dead-evidence compaction); otherwise
 * the child is a verbatim copy.  uncov pointers may be 0 (pair-determined
 * mode threads no index array).  Returns the child's evidence count. */
int64_t adc_search_skip_child(intptr_t ev_p, int64_t stride, int32_t n_words,
                              int64_t n_cols, intptr_t red_p, intptr_t pairs_p,
                              intptr_t uncov_p, int32_t compact,
                              intptr_t child_ev_p, int64_t child_stride,
                              intptr_t child_cin_p, intptr_t child_pairs_p,
                              intptr_t child_uncov_p)
{
    const uint64_t *ev = (const uint64_t *)ev_p;
    const uint32_t *red = (const uint32_t *)red_p;
    const int64_t *pairs = (const int64_t *)pairs_p;
    const int64_t *uncov = (const int64_t *)uncov_p;
    uint64_t *child_ev = (uint64_t *)child_ev_p;
    uint32_t *child_cin = (uint32_t *)child_cin_p;
    int64_t *child_pairs = (int64_t *)child_pairs_p;
    int64_t *child_uncov = (int64_t *)child_uncov_p;

    if (!compact) {
        for (int32_t w = 0; w < n_words; w++)
            memcpy(child_ev + (int64_t)w * child_stride,
                   ev + (int64_t)w * stride, (size_t)n_cols * sizeof(uint64_t));
        memcpy(child_cin, red, (size_t)n_cols * sizeof(uint32_t));
        memcpy(child_pairs, pairs, (size_t)n_cols * sizeof(int64_t));
        if (uncov)
            memcpy(child_uncov, uncov, (size_t)n_cols * sizeof(int64_t));
        return n_cols;
    }
    int64_t m = 0;
    for (int64_t e = 0; e < n_cols; e++) {
        if (!red[e])
            continue;
        for (int32_t w = 0; w < n_words; w++)
            child_ev[(int64_t)w * child_stride + m] =
                ev[(int64_t)w * stride + e];
        child_cin[m] = red[e];
        child_pairs[m] = pairs[e];
        if (uncov)
            child_uncov[m] = uncov[e];
        m++;
    }
    return m;
}

/* Hit-loop preamble: extract the predicate indices of to_try in ascending
 * order and gather, per element, its evidence-membership row (covers), the
 * freshly-critical bits (covers ∩ uncov_bits) and the child's uncovered
 * bitset (uncov_bits \ covers).  Blocks are (k, n_ev_words) row-major.
 * Returns k, the number of elements. */
int64_t adc_search_hit_prepare(intptr_t to_try_p, int32_t n_cand_words,
                               intptr_t contains_p, int64_t contains_stride,
                               intptr_t uncov_bits_p, int32_t n_ev_words,
                               intptr_t elements_p, intptr_t covers_block_p,
                               intptr_t crit_block_p, intptr_t child_bits_p)
{
    const uint64_t *to_try = (const uint64_t *)to_try_p;
    const uint64_t *contains = (const uint64_t *)contains_p;
    const uint64_t *uncov_bits = (const uint64_t *)uncov_bits_p;
    int32_t *elements = (int32_t *)elements_p;
    uint64_t *covers_block = (uint64_t *)covers_block_p;
    uint64_t *crit_block = (uint64_t *)crit_block_p;
    uint64_t *child_bits = (uint64_t *)child_bits_p;

    int64_t k = 0;
    for (int32_t w = 0; w < n_cand_words; w++) {
        uint64_t word = to_try[w];
        while (word) {
            uint64_t low = word & (~word + 1);
            int32_t element = w * 64 + (int32_t)POPCOUNT(low - 1);
            word ^= low;
            const uint64_t *row = contains + (int64_t)element * contains_stride;
            uint64_t *cov = covers_block + k * (int64_t)n_ev_words;
            uint64_t *crt = crit_block + k * (int64_t)n_ev_words;
            uint64_t *chb = child_bits + k * (int64_t)n_ev_words;
            for (int32_t v = 0; v < n_ev_words; v++) {
                uint64_t c = row[v];
                cov[v] = c;
                crt[v] = c & uncov_bits[v];
                chb[v] = uncov_bits[v] & ~c;
            }
            elements[k++] = element;
        }
    }
    return k;
}

/* One hit-loop step for element `position`:
 *
 *   1. criticality apply (strip covers from the member rows, recording the
 *      removed bits for the caller-held undo token);
 *   2. not viable -> restore immediately, return 0 (pruned);
 *   3. viable -> add the element back to cand_loop (it becomes a candidate
 *      again for later siblings);
 *   4. descend == 0 -> restore and return 1 (root-branch replay);
 *   5. descend != 0 -> build the child state in the next arena slot:
 *      evidences not covered by the element survive, the child candidate
 *      plane loses the element's whole predicate group, and the child's
 *      candidate-overlap counts are recomputed against that plane.  The
 *      criticality planes stay APPLIED (depth becomes crit_depth + 1); the
 *      caller undoes them when the child subtree returns.  Returns 2.
 *
 * out_scalars = {element, E_child, child_pair_sum}.
 */
int32_t adc_search_try_hit(
    intptr_t ev_p, int64_t stride, int32_t n_words, int64_t n_cols,
    intptr_t pairs_p, intptr_t uncov_p, intptr_t cand_loop_p,
    int32_t n_cand_words, intptr_t elements_p, intptr_t covers_block_p,
    intptr_t crit_block_p, intptr_t child_bits_p, int32_t n_ev_words,
    int64_t position, intptr_t crit_rows_p, int64_t crit_stride,
    int64_t crit_depth, intptr_t removed_p, intptr_t group_inv_p,
    int64_t group_stride, int32_t descend, intptr_t child_ev_p,
    int64_t child_stride, intptr_t child_cin_p, intptr_t child_pairs_p,
    intptr_t child_uncov_p, intptr_t child_cand_p, intptr_t child_bits_out_p,
    intptr_t out_scalars_p)
{
    const uint64_t *ev = (const uint64_t *)ev_p;
    const int64_t *pairs = (const int64_t *)pairs_p;
    const int64_t *uncov = (const int64_t *)uncov_p;
    uint64_t *cand_loop = (uint64_t *)cand_loop_p;
    const int32_t *elements = (const int32_t *)elements_p;
    const uint64_t *covers_block = (const uint64_t *)covers_block_p;
    const uint64_t *crit_block = (const uint64_t *)crit_block_p;
    const uint64_t *child_bits = (const uint64_t *)child_bits_p;
    int64_t *out = (int64_t *)out_scalars_p;

    int32_t element = elements[position];
    const uint64_t *covers = covers_block + position * (int64_t)n_ev_words;
    out[0] = element;
    out[1] = 0;
    out[2] = 0;

    int32_t viable = adc_crit_apply(
        crit_rows_p, crit_stride, n_ev_words, crit_depth,
        (intptr_t)(crit_block + position * (int64_t)n_ev_words),
        (intptr_t)covers, removed_p);
    if (!viable) {
        adc_crit_undo(crit_rows_p, crit_stride, n_ev_words, crit_depth,
                      removed_p);
        return 0;
    }
    cand_loop[element >> 6] |= (uint64_t)1 << (element & 63);
    if (!descend) {
        adc_crit_undo(crit_rows_p, crit_stride, n_ev_words, crit_depth,
                      removed_p);
        return 1;
    }

    uint64_t *child_ev = (uint64_t *)child_ev_p;
    uint32_t *child_cin = (uint32_t *)child_cin_p;
    int64_t *child_pairs = (int64_t *)child_pairs_p;
    int64_t *child_uncov = (int64_t *)child_uncov_p;
    uint64_t *child_cand = (uint64_t *)child_cand_p;
    const uint64_t *group_inv =
        (const uint64_t *)group_inv_p + (int64_t)element * group_stride;

    for (int32_t w = 0; w < n_cand_words; w++)
        child_cand[w] = cand_loop[w] & group_inv[w];
    /* The element added itself back to cand_loop above, but its own group
     * mask removes it again, so child_cand never contains the element. */

    const uint64_t *hit_row = ev + (int64_t)(element >> 6) * stride;
    uint64_t bit = (uint64_t)1 << (element & 63);
    int64_t m = 0;
    int64_t pair_sum = 0;
    for (int64_t e = 0; e < n_cols; e++) {
        if (hit_row[e] & bit)
            continue;
        for (int32_t w = 0; w < n_words; w++)
            child_ev[(int64_t)w * child_stride + m] =
                ev[(int64_t)w * stride + e];
        child_pairs[m] = pairs[e];
        if (uncov)
            child_uncov[m] = uncov[e];
        pair_sum += pairs[e];
        m++;
    }
    memset(child_cin, 0, (size_t)m * sizeof(uint32_t));
    for (int32_t w = 0; w < n_words; w++) {
        uint64_t mask = child_cand[w];
        if (!mask)
            continue;
        const uint64_t *row = child_ev + (int64_t)w * child_stride;
        for (int64_t e = 0; e < m; e++)
            child_cin[e] += (uint32_t)POPCOUNT(row[e] & mask);
    }
    memcpy((uint64_t *)child_bits_out_p,
           child_bits + position * (int64_t)n_ev_words,
           (size_t)n_ev_words * sizeof(uint64_t));
    out[1] = m;
    out[2] = pair_sum;
    return 2;
}
