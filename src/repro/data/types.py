"""Column type model for relations.

The predicate space of a denial constraint depends on column types: order
comparisons (``<``, ``<=``, ``>``, ``>=``) are only generated for numeric
columns, while equality and inequality apply to every column.  This module
defines the small type lattice used throughout the library and the inference
routine that maps raw Python values onto it.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Sequence


class ColumnType(enum.Enum):
    """Type of a relation column.

    The three members mirror the distinction made by the paper (Section 3):
    string attributes support ``=`` and ``!=`` only, numeric attributes
    (integers and floats) additionally support the order operators.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"

    @property
    def is_numeric(self) -> bool:
        """Return ``True`` for integer and float columns."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _looks_like_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _looks_like_float(text: str) -> bool:
    try:
        value = float(text)
    except ValueError:
        return False
    return not math.isnan(value)


def infer_value_type(value: object) -> ColumnType:
    """Infer the :class:`ColumnType` of a single value.

    Booleans are treated as integers, strings holding numbers are classified
    by their content (so CSV data does not degrade to strings), and anything
    else falls back to ``STRING``.
    """
    if isinstance(value, bool):
        return ColumnType.INTEGER
    if isinstance(value, int):
        return ColumnType.INTEGER
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            return ColumnType.STRING
        if _looks_like_int(stripped):
            return ColumnType.INTEGER
        if _looks_like_float(stripped):
            return ColumnType.FLOAT
    return ColumnType.STRING


def infer_column_type(values: Iterable[object]) -> ColumnType:
    """Infer the type of a column from its values.

    The result is the least upper bound over the per-value types: a column is
    integer only if every value is an integer, float if every value is
    numeric, and string otherwise.  An empty column defaults to ``STRING``.
    """
    result: ColumnType | None = None
    for value in values:
        value_type = infer_value_type(value)
        if result is None:
            result = value_type
        elif result is not value_type:
            if result.is_numeric and value_type.is_numeric:
                result = ColumnType.FLOAT
            else:
                return ColumnType.STRING
    return result if result is not None else ColumnType.STRING


def coerce_values(values: Sequence[object], column_type: ColumnType) -> list[object]:
    """Coerce raw values to the canonical Python type for ``column_type``.

    Strings holding numbers are parsed for numeric columns; everything is
    stringified for string columns.  ``None`` is mapped to a type-appropriate
    missing marker (empty string / ``nan``) so the numpy backing array stays
    homogeneous.
    """
    coerced: list[object] = []
    for value in values:
        if column_type is ColumnType.STRING:
            coerced.append("" if value is None else str(value))
        elif column_type is ColumnType.INTEGER:
            if value is None:
                raise ValueError("integer columns do not support missing values")
            coerced.append(int(value))
        else:
            coerced.append(float("nan") if value is None else float(value))
    return coerced
