"""Structured JSON logging: one event per line, machine-parseable.

Replaces the serve layer's ad-hoc stderr prints.  Each line is a single
JSON object with a fixed envelope (``ts``, ``level``, ``event``) plus
arbitrary event fields (peer address, tenant, op, error code, span
segments...).  The logger is safe to call from asyncio callbacks and
executor threads (one lock around the write), filters on a minimum
level, and never raises — a log line that fails to serialize falls back
to ``repr`` rather than taking down the server.

The readiness banner on **stdout** (``repro-serve listening on ...``) is a
wire contract parsed by wrappers and benchmarks; it stays a plain print.
Everything else goes through here to stderr.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Mapping

__all__ = ["JsonLogger", "get_logger", "set_logger"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    return repr(value)


class JsonLogger:
    """Line-oriented JSON event logger with level filtering."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        min_level: str = "info",
        name: str = "repro",
    ) -> None:
        if min_level not in _LEVELS:
            raise ValueError(f"unknown log level {min_level!r}")
        self.stream = stream if stream is not None else sys.stderr
        self.min_level = min_level
        self.name = name
        self._lock = threading.Lock()

    def enabled_for(self, level: str) -> bool:
        return _LEVELS.get(level, 0) >= _LEVELS[self.min_level]

    def log(self, level: str, event: str, **fields: object) -> None:
        if not self.enabled_for(level):
            return
        record: dict[str, object] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        try:
            line = json.dumps(record, separators=(",", ":"), default=repr)
        except Exception:  # pragma: no cover - double fallback
            line = json.dumps({"ts": record["ts"], "level": level,
                               "event": event, "error": "unserializable"})
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except Exception:  # pragma: no cover - closed/broken stream
                pass

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


_default_logger = JsonLogger()


def get_logger() -> JsonLogger:
    """The process-wide structured logger (stderr, info level)."""
    return _default_logger


def set_logger(logger: JsonLogger) -> JsonLogger:
    """Swap the process-wide logger (tests/CLI); returns the previous one."""
    global _default_logger
    previous = _default_logger
    _default_logger = logger
    return previous
