"""One-call local clusters: a coordinator plus n workers on this machine.

:class:`LocalCluster` is the deployment helper behind
``build_evidence_set(method="cluster", cluster=LocalCluster(4))`` and the
examples/benchmarks: it stands up a :class:`ClusterCoordinator` and spawns
``n_workers`` workers against it, either as

* ``transport="socket"`` — real ``python -m repro.cluster.worker``
  subprocesses connecting over localhost TCP, the same code path a
  multi-machine deployment runs (and what the chaos tests SIGKILL), or
* ``transport="local"`` — in-process worker threads over
  :class:`~repro.cluster.transport.LocalTransport` queue pairs: no fork, no
  ports, but every message still round-trips through pickle, so the test
  suite exercises the full serialization surface cheaply.

``use_shm=True`` makes workers return shared-memory handles instead of
pickling partials through the link (:mod:`repro.cluster.shm`).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import repro
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.transport import LocalTransport


def _worker_environment() -> dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` can import this ``repro``."""
    source_root = str(Path(repro.__file__).resolve().parents[1])
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_root if not existing else f"{source_root}{os.pathsep}{existing}"
    )
    return environment


class LocalCluster:
    """A coordinator plus ``n_workers`` same-machine workers.

    Parameters
    ----------
    n_workers:
        Workers to spawn (must be positive).
    transport:
        ``"socket"`` (worker subprocesses over localhost TCP, the default)
        or ``"local"`` (in-process worker threads over queue pairs).
    use_shm:
        Return partial evidence sets via shared memory instead of pickling
        them through the link.
    task_timeout:
        Straggler re-issue timeout forwarded to the coordinator.
    context_timeout:
        Context-install liveness bound forwarded to the coordinator;
        raise it when a legitimately huge context takes over a minute to
        ship and unpickle (``None`` disables the bound).
    connect_timeout:
        Seconds to wait for all socket workers to dial in.
    """

    def __init__(
        self,
        n_workers: int,
        transport: str = "socket",
        use_shm: bool = False,
        task_timeout: float | None = None,
        context_timeout: float | None = 60.0,
        connect_timeout: float = 30.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if transport not in ("socket", "local"):
            raise ValueError(f"unknown transport {transport!r} (socket or local)")
        self.transport = transport
        self.use_shm = bool(use_shm)
        self.coordinator = ClusterCoordinator(
            task_timeout=task_timeout, context_timeout=context_timeout
        )
        self.processes: list[subprocess.Popen] = []
        self._threads: list[threading.Thread] = []

        if transport == "local":
            # Imported here, not at module scope: the worker module doubles
            # as the ``-m`` entry point and must stay out of the package
            # import graph (see the note in repro/cluster/__init__.py).
            from repro.cluster.worker import default_worker_id, serve

            for index in range(n_workers):
                coordinator_end, worker_end = LocalTransport.pair()
                self.coordinator.add_worker(coordinator_end)
                # In-process workers share one pid, so the host:pid default
                # would collide in federated metric labels; suffix the slot.
                thread = threading.Thread(
                    target=serve, args=(worker_end,),
                    kwargs={
                        "use_shm": self.use_shm,
                        "worker_id": f"{default_worker_id()}:w{index}",
                    },
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        else:
            try:
                host, port = self.coordinator.listen()
                command = [
                    sys.executable, "-m", "repro.cluster.worker",
                    "--connect", f"{host}:{port}",
                ]
                if self.use_shm:
                    command.append("--shm")
                environment = _worker_environment()
                for _ in range(n_workers):
                    self.processes.append(
                        subprocess.Popen(command, env=environment)
                    )
                self.coordinator.accept_workers(n_workers, timeout=connect_timeout)
            except BaseException:
                # A timeout, spawn failure, or Ctrl-C during the accept
                # wait would leak subprocesses stuck dialing a dead
                # listener; reap them.  BaseException: KeyboardInterrupt
                # mid-wait is the *most* likely abort.
                self.close()
                raise

    @property
    def n_workers(self) -> int:
        """Workers currently alive in the coordinator's registry."""
        return self.coordinator.n_alive

    def submit(self, context, tasks, weights=None, journal=None):
        """Forward to the coordinator (so a cluster *is* a submit target)."""
        return self.coordinator.submit(context, tasks, weights, journal)

    def close(self) -> None:
        """Shut down the coordinator and reap every spawned worker."""
        self.coordinator.shutdown()
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resolve_coordinator(cluster: object) -> ClusterCoordinator:
    """Accept a :class:`ClusterCoordinator` or anything carrying one.

    This is what lets every entry point take ``cluster=`` as either the
    raw coordinator (remote deployments wire their own workers) or a
    :class:`LocalCluster` convenience wrapper.
    """
    if isinstance(cluster, ClusterCoordinator):
        return cluster
    coordinator = getattr(cluster, "coordinator", None)
    if isinstance(coordinator, ClusterCoordinator):
        return coordinator
    raise TypeError(
        f"expected a ClusterCoordinator or LocalCluster, got {type(cluster).__name__}"
    )
