"""Evidence engine — serial tiled builder vs the process-pool engine.

Not a paper figure: this benchmark tracks the parallel evidence engine of
``repro.engine``.  It builds the evidence set of the 1k-row benchmark
relation with the serial tiled builder and with
``build_evidence_set_parallel`` at 1, 2 and 4 workers, reporting wall-clock
seconds, the building process's tracemalloc peak, and the pool workers'
peak RSS.  Each configuration is measured inside its own child process:
``getrusage(RUSAGE_CHILDREN)`` is a lifetime high-water mark over *all*
reaped children, so measuring in-process would leak the largest earlier
configuration's peak into every later row.  Results are also written as a
JSON artifact (``--json PATH``) so CI can archive the perf trajectory.

The speedup the pool can show is bounded by the machine: on a single-core
runner the parallel engine can only match the serial builder (its value
there is the bounded per-worker memory), so the speedup expectation is
asserted only when enough CPUs are available.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_evidence_parallel.py \
        [--json BENCH_evidence_parallel.json] [--rows 1000]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import resource
import sys
import time
import tracemalloc

from repro.core.evidence_builder import build_evidence_set_tiled
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.engine import build_evidence_set_parallel

#: Rows of the benchmark relation (the "1k-row" reference point).
BENCH_ROWS = 1000

#: Worker counts swept by the benchmark.
WORKER_COUNTS = (1, 2, 4)

#: Speedup 4 workers must reach over the serial tiled builder when the
#: machine actually has 4 CPUs.
EXPECTED_SPEEDUP = 1.5


def _children_peak_rss_bytes() -> int:
    """Peak RSS of reaped child processes (bytes; ru_maxrss is kB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return peak * (1 if sys.platform == "darwin" else 1024)


def _measure_in_child(connection, builder, relation, space, kwargs) -> None:
    """Best-of-two wall clock plus memory peaks for one builder call.

    Runs inside a fresh child process so this configuration's pool workers
    are the only children ``RUSAGE_CHILDREN`` has ever seen here.
    """
    best: dict[str, object] | None = None
    for _ in range(2):
        tracemalloc.start()
        started = time.perf_counter()
        evidence = builder(relation, space, include_participation=False, **kwargs)
        elapsed = time.perf_counter() - started
        _, main_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if best is None or elapsed < float(best["seconds"]):  # type: ignore[arg-type]
            best = {
                "seconds": elapsed,
                "main_peak_mb": main_peak / 1e6,
                "workers_peak_rss_mb": _children_peak_rss_bytes() / 1e6,
                "evidences": len(evidence),
            }
    connection.send(best)
    connection.close()


def _measure(builder, relation, space, **kwargs) -> dict[str, object]:
    """Measure one configuration in an isolated child process."""
    context = multiprocessing.get_context()
    parent_end, child_end = context.Pipe(duplex=False)
    process = context.Process(
        target=_measure_in_child, args=(child_end, builder, relation, space, kwargs)
    )
    process.start()
    child_end.close()
    result = parent_end.recv()
    process.join()
    return result


def run_parallel_engine_comparison(n_rows: int = BENCH_ROWS) -> list[dict[str, object]]:
    """Serial tiled vs parallel at 1/2/4 workers; one row per configuration."""
    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    # Warm the relation's string-factorization cache so no builder pays for
    # it inside the timed region.
    for column in relation.column_names:
        if not relation.column(column).type.is_numeric:
            relation.string_codes(column, column)

    rows: list[dict[str, object]] = []
    measured = _measure(build_evidence_set_tiled, relation, space)
    measured.update({"builder": "tiled", "n_workers": "-"})
    rows.append(measured)
    baseline = float(measured["seconds"])

    for n_workers in WORKER_COUNTS:
        measured = _measure(
            build_evidence_set_parallel, relation, space, n_workers=n_workers
        )
        measured.update({
            "builder": "parallel",
            "n_workers": n_workers,
            "speedup_vs_tiled": baseline / float(measured["seconds"]),
        })
        rows.append(measured)
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-speedup", action="store_true",
                        help="fail unless 4 workers reach the expected speedup "
                             "(implied soft check runs when >= 4 CPUs are present)")
    args = parser.parse_args()

    cpu_count = os.cpu_count() or 1
    rows = run_parallel_engine_comparison(args.rows)

    header = (
        f"{'builder':<9} {'workers':>7} {'seconds':>9} {'speedup':>8} "
        f"{'main MB':>9} {'workers MB':>11} {'evidences':>10}"
    )
    print(f"Evidence engine on {args.rows} rows ({cpu_count} CPUs):")
    print(header)
    print("-" * len(header))
    for row in rows:
        speedup = row.get("speedup_vs_tiled")
        speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
        print(
            f"{row['builder']:<9} {str(row['n_workers']):>7} "
            f"{row['seconds']:>9.3f} {speedup_text:>8} "
            f"{row['main_peak_mb']:>9.1f} {row['workers_peak_rss_mb']:>11.1f} "
            f"{row['evidences']:>10}"
        )

    # All configurations must agree on the evidence multiset size.
    sizes = {row["evidences"] for row in rows}
    if len(sizes) != 1:
        print(f"ERROR: builders disagree on evidence count: {sizes}", file=sys.stderr)
        return 1

    best_speedup = max(
        float(row.get("speedup_vs_tiled", 0.0)) for row in rows
    )
    if cpu_count >= 4 and best_speedup < EXPECTED_SPEEDUP:
        message = (
            f"parallel engine reached only {best_speedup:.2f}x on {cpu_count} CPUs "
            f"(expected >= {EXPECTED_SPEEDUP}x)"
        )
        if args.require_speedup:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
        print(f"WARNING: {message}", file=sys.stderr)
    elif cpu_count < 4:
        print(
            f"note: {cpu_count} CPU(s) available; the {EXPECTED_SPEEDUP}x target "
            "applies on >= 4 CPUs"
        )

    if args.json:
        payload = {
            "benchmark": "evidence_parallel",
            "n_rows": args.rows,
            "cpu_count": cpu_count,
            "expected_speedup_at_4_workers": EXPECTED_SPEEDUP,
            "rows": rows,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
