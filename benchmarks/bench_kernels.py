"""Native kernel layer — compiled backend vs the numpy reference.

Not a paper figure: this benchmark tracks the compiled kernel layer
(:mod:`repro.native`) against the pure-numpy reference backend it is
dispatched over.  Three measurement families:

* **micro-kernels** — ``popcount``, the fused per-evidence intersection
  counts and the one-call tile pass on synthetic planes shaped like the
  real workloads;
* **end-to-end evidence build** — the tiled builder on the tax relation
  under each backend (the tile pass dominates), outputs asserted
  bit-identical;
* **end-to-end enumeration** — ``ADCEnum`` nodes/second on the
  Figure-6-style tax workload (f1, ``epsilon = 0.01``,
  ``max_dc_size = 3``) under each backend, outputs asserted bit-identical.

The acceptance bars of the native layer are enforced with
``--require-speedup``: enumeration nodes/second >= 3x and evidence build
>= 2x over the numpy backend.  Without a compiled backend on the host the
script reports numpy-only numbers (and fails only under the gate).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py \
        [--json BENCH_kernels.json] [--rows 400] [--require-speedup]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.adc_enum import ADCEnum
from repro.core.approximation import F1
from repro.core.evidence_builder import build_evidence_set_tiled
from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import generate_dataset
from repro.engine.kernel import TileKernel
from repro.native import NumpyKernels, dispatch

#: Rows of the benchmark relation (Figure-6-style tax workload).
BENCH_ROWS = 400

#: Enumeration configuration, matching ``bench_enum_core``'s headline row.
EPSILON = 0.01
MAX_DC_SIZE = 3

#: Acceptance bars of the native layer over the numpy backend.
EXPECTED_ENUM_SPEEDUP = 3.0
EXPECTED_BUILD_SPEEDUP = 2.0

#: Timing repetitions (best-of).
REPEATS = 3


def _compiled_backend():
    """The preferred compiled backend of this host, or ``None``.

    Resolved explicitly (not through the environment) so the benchmark can
    compare both backends regardless of what ``REPRO_NATIVE`` selects for
    the process default.
    """
    for name in ("cext", "numba"):
        try:
            return dispatch.resolve_backend(name)
        except RuntimeError:
            continue
    return None


def _best_seconds(fn, repeats: int = REPEATS, inner: int = 1) -> float:
    """Best per-call wall time of ``fn`` over ``repeats`` x ``inner`` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def _micro_rows(compiled, packed) -> list[dict[str, object]]:
    """One row per micro-kernel: compiled vs numpy on synthetic planes."""
    rng = np.random.default_rng(7)
    numpy_kernels = NumpyKernels()

    words = rng.integers(0, 2**64, size=1 << 20, dtype=np.uint64)
    planes = rng.integers(0, 2**64, size=(8, 50_000), dtype=np.uint64)
    mask = rng.integers(0, 2**64, size=8, dtype=np.uint64)
    kinds, a, b, lookup = packed
    n_words = lookup.shape[2]
    n_rows = a.shape[1]
    tile = min(128, n_rows)

    cases = [
        ("popcount", lambda k: k.popcount(words)),
        ("intersection_counts", lambda k: k.intersection_counts(planes, mask)),
        (
            "tile_plane",
            lambda k: k.tile_plane(kinds, a, b, lookup, 0, tile, 0, tile, n_words),
        ),
    ]
    rows = []
    for name, call in cases:
        reference = call(numpy_kernels)
        numpy_seconds = _best_seconds(lambda: call(numpy_kernels), inner=5)
        row: dict[str, object] = {"kernel": name, "numpy_seconds": numpy_seconds}
        if compiled is not None:
            assert np.array_equal(np.asarray(call(compiled.kernels)), np.asarray(reference)), name
            native_seconds = _best_seconds(lambda: call(compiled.kernels), inner=5)
            row["native_seconds"] = native_seconds
            row["speedup"] = numpy_seconds / native_seconds if native_seconds else 0.0
        rows.append(row)
    return rows


def _build_row(compiled, relation, space) -> dict[str, object]:
    """End-to-end tiled evidence build under each backend."""

    def build(backend):
        with dispatch.use_backend(backend):
            return build_evidence_set_tiled(relation, space)

    reference = build("numpy")
    numpy_seconds = _best_seconds(lambda: build("numpy"))
    row: dict[str, object] = {
        "n_evidences": len(reference),
        "numpy_seconds": numpy_seconds,
    }
    if compiled is not None:
        native = build(compiled)
        assert np.array_equal(native.words, reference.words)
        assert np.array_equal(native.counts, reference.counts)
        native_seconds = _best_seconds(lambda: build(compiled))
        row["native_seconds"] = native_seconds
        row["speedup"] = numpy_seconds / native_seconds if native_seconds else 0.0
        row["bit_identical"] = True
    return row


def _enum_row(compiled, evidence) -> dict[str, object]:
    """End-to-end enumeration nodes/second under each backend."""

    def run(backend):
        with dispatch.use_backend(backend):
            enumerator = ADCEnum(
                evidence, F1(), EPSILON, selection="max", max_dc_size=MAX_DC_SIZE
            )
            started = time.perf_counter()
            adcs = enumerator.enumerate()
            elapsed = time.perf_counter() - started
            return elapsed, enumerator.statistics, adcs

    def best(backend):
        runs = [run(backend) for _ in range(REPEATS)]
        return min(runs, key=lambda r: r[0])

    numpy_seconds, numpy_stats, numpy_adcs = best("numpy")
    row: dict[str, object] = {
        "epsilon": EPSILON,
        "max_dc_size": MAX_DC_SIZE,
        "nodes": numpy_stats.recursive_calls,
        "dcs": len(numpy_adcs),
        "numpy_seconds": numpy_seconds,
        "numpy_nodes_per_second": numpy_stats.recursive_calls / numpy_seconds,
    }
    if compiled is not None:
        native_seconds, native_stats, native_adcs = best(compiled)
        assert [(a.hitting_set_mask, a.violation_score) for a in native_adcs] == [
            (a.hitting_set_mask, a.violation_score) for a in numpy_adcs
        ]
        assert native_stats.recursive_calls == numpy_stats.recursive_calls
        row["native_seconds"] = native_seconds
        row["native_nodes_per_second"] = native_stats.recursive_calls / native_seconds
        row["speedup"] = numpy_seconds / native_seconds if native_seconds else 0.0
        row["bit_identical"] = True
    return row


def run_kernel_comparison(n_rows: int = BENCH_ROWS) -> dict[str, object]:
    compiled = _compiled_backend()
    relation = generate_dataset("tax", n_rows=n_rows, seed=7).relation
    space = build_predicate_space(relation)
    # Warm the factorization caches and the packed tile kernel once so
    # neither backend pays one-time costs inside the timed region.
    kernel = TileKernel.from_relation(relation, space)
    evidence = build_evidence_set_tiled(relation, space)

    return {
        "benchmark": "kernels",
        "n_rows": n_rows,
        "compiled_backend": compiled.name if compiled is not None else None,
        "expected_enum_speedup": EXPECTED_ENUM_SPEEDUP,
        "expected_build_speedup": EXPECTED_BUILD_SPEEDUP,
        "micro": _micro_rows(compiled, kernel._packed),
        "evidence_build": _build_row(compiled, relation, space),
        "enumeration": _enum_row(compiled, evidence),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=BENCH_ROWS)
    parser.add_argument("--json", type=str, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--require-speedup", action="store_true",
                        help=f"fail unless enumeration reaches "
                             f"{EXPECTED_ENUM_SPEEDUP}x and the evidence "
                             f"build {EXPECTED_BUILD_SPEEDUP}x")
    args = parser.parse_args()

    results = run_kernel_comparison(args.rows)
    compiled_name = results["compiled_backend"]

    print(f"Native kernel layer on tax x {args.rows} rows "
          f"(compiled backend: {compiled_name or 'none'}, best of {REPEATS}):")
    header = f"{'kernel':>22} {'numpy s':>10} {'native s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in results["micro"]:
        native = row.get("native_seconds")
        native_text = f"{native:.6f}" if native is not None else "-"
        speedup = row.get("speedup")
        speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
        print(f"{row['kernel']:>22} {row['numpy_seconds']:>10.6f} "
              f"{native_text:>10} {speedup_text:>8}")
    build = results["evidence_build"]
    enum = results["enumeration"]
    for label, row in (("evidence build", build), ("enumeration", enum)):
        native = row.get("native_seconds")
        native_text = f"{native:.3f}" if native is not None else "-"
        speedup = row.get("speedup")
        speedup_text = f"{speedup:.2f}x" if speedup is not None else "-"
        print(f"{label:>22} {row['numpy_seconds']:>10.3f} "
              f"{native_text:>10} {speedup_text:>8}")
    if "native_nodes_per_second" in enum:
        print(f"\nnodes/second: {enum['numpy_nodes_per_second']:,.0f} (numpy) "
              f"-> {enum['native_nodes_per_second']:,.0f} ({compiled_name})")

    # Write the artifact before evaluating the gates: when a gate fails,
    # the per-kernel timings are exactly the data needed to diagnose it.
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {args.json}")

    failures = []
    if compiled_name is None:
        failures.append("no compiled backend available on this host")
    else:
        if enum["speedup"] < EXPECTED_ENUM_SPEEDUP:
            failures.append(
                f"enumeration speedup {enum['speedup']:.2f}x < "
                f"{EXPECTED_ENUM_SPEEDUP}x"
            )
        if build["speedup"] < EXPECTED_BUILD_SPEEDUP:
            failures.append(
                f"evidence build speedup {build['speedup']:.2f}x < "
                f"{EXPECTED_BUILD_SPEEDUP}x"
            )
    for message in failures:
        stream = sys.stderr if args.require_speedup else sys.stdout
        prefix = "ERROR" if args.require_speedup else "WARNING"
        print(f"{prefix}: {message}", file=stream)
    return 1 if (failures and args.require_speedup) else 0


if __name__ == "__main__":
    sys.exit(main())
