"""Synthetic dataset generators.

The paper evaluates on seven real-world datasets and one synthetic dataset
(Table 4).  Real datasets cannot be shipped here, so each is replaced by a
deterministic synthetic generator that reproduces its *shape*: the mix of
string and numeric attributes, key-like and order-like dependencies, and a
set of golden DCs (defined in :mod:`repro.data.golden`) that hold exactly on
the clean data.  Row counts are scaled down to laptop size but keep the
paper's relative ordering (Tax and NCVoter largest, Adult smallest).

All generators take an explicit ``seed`` and are fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.dc import DenialConstraint
from repro.data.golden import golden_dcs
from repro.data.relation import Relation

#: Default (scaled-down) row counts, preserving the paper's relative sizes.
DEFAULT_ROWS: dict[str, int] = {
    "tax": 1000,
    "stock": 600,
    "hospital": 550,
    "food": 700,
    "airport": 450,
    "adult": 320,
    "flight": 800,
    "voter": 950,
}

#: Dataset names in the order used by the paper's figures.
DATASET_NAMES: tuple[str, ...] = (
    "tax", "stock", "hospital", "food", "airport", "adult", "flight", "voter",
)

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry", "Irene",
    "Jack", "Karen", "Liam", "Mona", "Noah", "Olivia", "Paul", "Quinn", "Rose",
    "Sam", "Tina", "Umar", "Vera", "Will", "Xena", "Yara", "Zane",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis", "Wilson",
    "Moore", "Taylor", "Anderson", "Thomas", "Jackson", "White", "Harris",
    "Martin", "Thompson", "Young", "King", "Wright",
]
_STATES = [
    "NY", "CA", "TX", "FL", "IL", "PA", "OH", "GA", "NC", "MI",
    "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI", "CO", "MN",
]


@dataclass
class Dataset:
    """A synthetic dataset: the relation, its golden DCs, and provenance."""

    name: str
    relation: Relation
    golden: list[DenialConstraint]
    description: str = ""
    seed: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        """Number of tuples in the relation."""
        return self.relation.n_rows

    @property
    def n_columns(self) -> int:
        """Number of attributes in the relation."""
        return self.relation.n_columns

    @property
    def n_golden(self) -> int:
        """Number of golden DCs."""
        return len(self.golden)


# ----------------------------------------------------------------------
# Individual generators
# ----------------------------------------------------------------------
def generate_tax(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Tax dataset (the paper's only synthetic dataset).

    Each state has a fixed tax rate and fixed single/child exemptions; zip
    codes belong to exactly one city and state; tax is a monotone function
    of salary within a state.
    """
    n_rows = n_rows or DEFAULT_ROWS["tax"]
    rng = random.Random(seed)
    state_info = {}
    for index, state in enumerate(_STATES):
        rate = 5 + index  # distinct integer percentage per state
        single_exemp = 500 * rng.randint(4, 16)
        child_exemp = 500 * rng.randint(1, single_exemp // 500)
        state_info[state] = (rate, single_exemp, child_exemp)
    zip_info = {}
    zip_base = 10000
    for state in _STATES:
        for local in range(rng.randint(3, 6)):
            zip_code = zip_base
            zip_base += rng.randint(3, 9)
            city = f"{state}_City_{local}"
            zip_info[zip_code] = (city, state)
    zip_codes = list(zip_info)

    rows = []
    for _ in range(n_rows):
        zip_code = rng.choice(zip_codes)
        city, state = zip_info[zip_code]
        rate, single_exemp, child_exemp = state_info[state]
        salary = 1000 * rng.randint(20, 90)
        tax = (salary * rate // 100) // 100 * 100
        rows.append({
            "Name": f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
            "Gender": rng.choice(["M", "F"]),
            "State": state,
            "Zip": zip_code,
            "City": city,
            "Salary": salary,
            "Rate": float(rate),
            "Tax": tax,
            "SingleExemp": single_exemp,
            "ChildExemp": child_exemp,
        })
    relation = Relation.from_records("tax", rows)
    return Dataset("tax", relation, golden_dcs("tax"),
                   "income-tax records with per-state rates and exemptions", seed)


def generate_stock(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic SP Stock dataset: daily OHLC prices per ticker."""
    n_rows = n_rows or DEFAULT_ROWS["stock"]
    rng = random.Random(seed)
    tickers = [f"TCK{index:02d}" for index in range(30)]
    dates = [f"2019-01-{day:02d}" for day in range(1, 29)]
    base_price = {ticker: 2 * rng.randint(15, 45) for ticker in tickers}
    quote_cache: dict[tuple[str, str], tuple[int, int, int, int]] = {}

    def quote(ticker: str, date: str) -> tuple[int, int, int, int]:
        # Prices live on an even-integer grid so that the OHLC columns share
        # enough values for the cross-attribute predicates (the 30% rule).
        if (ticker, date) not in quote_cache:
            local = random.Random(hash((ticker, date, seed)) & 0xFFFFFFFF)
            center = base_price[ticker] + 2 * local.randint(-5, 5)
            spread = 2 * local.randint(1, 5)
            low = max(2, center - spread)
            high = center + spread
            open_ = low + 2 * local.randint(0, (high - low) // 2)
            close = low + 2 * local.randint(0, (high - low) // 2)
            quote_cache[(ticker, date)] = (open_, close, high, low)
        return quote_cache[(ticker, date)]

    rows = []
    for _ in range(n_rows):
        ticker = rng.choice(tickers)
        date = rng.choice(dates)
        open_, close, high, low = quote(ticker, date)
        rows.append({
            "Ticker": ticker,
            "Date": date,
            "Open": open_,
            "Close": close,
            "High": high,
            "Low": low,
            "Volume": rng.randint(1000, 50000),
        })
    relation = Relation.from_records("stock", rows)
    return Dataset("stock", relation, golden_dcs("stock"),
                   "daily OHLC stock quotes", seed)


def generate_hospital(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Hospital dataset: providers, locations and quality measures."""
    n_rows = n_rows or DEFAULT_ROWS["hospital"]
    rng = random.Random(seed)
    zip_info = {}
    zip_base = 30000
    for state in _STATES[:12]:
        for local in range(3):
            zip_code = zip_base
            zip_base += rng.randint(2, 7)
            zip_info[zip_code] = (f"{state}_Town_{local}", state)
    zip_codes = list(zip_info)
    providers = {}
    for provider_id in range(10000, 10000 + max(20, n_rows // 4)):
        zip_code = rng.choice(zip_codes)
        providers[provider_id] = (
            f"{rng.choice(_LAST_NAMES)} Medical Center",
            zip_code,
            5550000 + provider_id,
        )
    provider_ids = list(providers)
    measures = {f"MC-{index:02d}": f"Measure {index:02d}" for index in range(20)}
    measure_codes = list(measures)

    rows = []
    for _ in range(n_rows):
        provider_id = rng.choice(provider_ids)
        name, zip_code, phone = providers[provider_id]
        city, state = zip_info[zip_code]
        code = rng.choice(measure_codes)
        rows.append({
            "Provider": provider_id,
            "Name": name,
            "City": city,
            "State": state,
            "Zip": zip_code,
            "Phone": phone,
            "MeasureCode": code,
            "MeasureName": measures[code],
            "StateAvg": f"{state}_{code}",
        })
    relation = Relation.from_records("hospital", rows)
    return Dataset("hospital", relation, golden_dcs("hospital"),
                   "hospital providers and quality measures", seed)


def generate_food(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Food Inspection dataset: licensed facilities and inspections."""
    n_rows = n_rows or DEFAULT_ROWS["food"]
    rng = random.Random(seed)
    zip_info = {}
    zip_base = 60600
    for state in _STATES[:8]:
        for local in range(4):
            zip_code = zip_base
            zip_base += rng.randint(2, 6)
            zip_info[zip_code] = (f"{state}_Burg_{local}", state)
    zip_codes = list(zip_info)
    facility_types = ["Restaurant", "Bakery", "Grocery", "School", "Hospital Cafeteria"]
    risks = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"]
    licenses = {}
    for license_id in range(200000, 200000 + max(20, n_rows // 3)):
        zip_code = rng.choice(zip_codes)
        city, _state = zip_info[zip_code]
        address = f"{rng.randint(1, 999)} {rng.choice(_LAST_NAMES)} St, {city}"
        licenses[license_id] = (
            f"{rng.choice(_FIRST_NAMES)}'s {rng.choice(facility_types)}",
            address,
            zip_code,
            rng.choice(facility_types),
            rng.choice(risks),
        )
    license_ids = list(licenses)

    rows = []
    for _ in range(n_rows):
        license_id = rng.choice(license_ids)
        name, address, zip_code, facility_type, risk = licenses[license_id]
        city, state = zip_info[zip_code]
        rows.append({
            "License": license_id,
            "Name": name,
            "Address": address,
            "City": city,
            "State": state,
            "Zip": zip_code,
            "FacilityType": facility_type,
            "Risk": risk,
            "InspectionYear": rng.randint(2015, 2019),
        })
    relation = Relation.from_records("food", rows)
    return Dataset("food", relation, golden_dcs("food"),
                   "food-facility inspection records", seed)


def generate_airport(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Airport dataset: one row per airport observation."""
    n_rows = n_rows or DEFAULT_ROWS["airport"]
    rng = random.Random(seed)
    state_country = {state: "US" for state in _STATES}
    state_timezone = {state: -5 - (index % 4) for index, state in enumerate(_STATES)}
    airports = {}
    for index in range(max(20, n_rows // 2)):
        code = f"A{index:03d}"
        state = rng.choice(_STATES)
        airports[code] = (
            f"{rng.choice(_LAST_NAMES)} Field",
            f"{state}_Aero_{index % 5}_{state}",
            state,
            rng.randint(-900, 900),    # latitude in tenths of degrees
            rng.randint(-1800, 1800),  # longitude in tenths of degrees
            rng.randint(0, 9000),      # elevation in feet
        )
    codes = list(airports)

    rows = []
    for _ in range(n_rows):
        code = rng.choice(codes)
        name, city, state, latitude, longitude, elevation = airports[code]
        rows.append({
            "Code": code,
            "Name": name,
            "City": city,
            "State": state,
            "Country": state_country[state],
            "Latitude": latitude,
            "Longitude": longitude,
            "Elevation": elevation,
            "TimeZone": state_timezone[state],
        })
    relation = Relation.from_records("airport", rows)
    return Dataset("airport", relation, golden_dcs("airport"),
                   "airport master data", seed)


def generate_adult(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Adult (census) dataset."""
    n_rows = n_rows or DEFAULT_ROWS["adult"]
    rng = random.Random(seed)
    education_levels = [
        ("HS-grad", 9), ("Some-college", 10), ("Bachelors", 13),
        ("Masters", 14), ("Doctorate", 16), ("11th", 7), ("Assoc-voc", 11),
    ]
    workclasses = ["Private", "Self-emp", "Federal-gov", "State-gov", "Local-gov"]
    marital = ["Married", "Never-married", "Divorced", "Widowed"]
    reference_year = 2019

    rows = []
    for _ in range(n_rows):
        education, education_num = rng.choice(education_levels)
        age = rng.randint(18, 90)
        rows.append({
            "Age": age,
            "WorkClass": rng.choice(workclasses),
            "Education": education,
            "EducationNum": education_num,
            "MaritalStatus": rng.choice(marital),
            "Sex": rng.choice(["Male", "Female"]),
            "HoursPerWeek": rng.randint(10, 80),
            "BirthYear": reference_year - age,
        })
    relation = Relation.from_records("adult", rows)
    return Dataset("adult", relation, golden_dcs("adult"),
                   "census income records", seed)


def generate_flight(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic Flight dataset: scheduled flights with times and distances."""
    n_rows = n_rows or DEFAULT_ROWS["flight"]
    rng = random.Random(seed)
    airports = [f"P{index:02d}" for index in range(25)]
    airport_state = {airport: rng.choice(_STATES) for airport in airports}
    airlines = ["AA", "DL", "UA", "WN", "B6", "AS"]
    distance_cache: dict[tuple[str, str], int] = {}

    def distance(origin: str, dest: str) -> int:
        if (origin, dest) not in distance_cache:
            local = random.Random(hash((origin, dest, seed)) & 0xFFFFFFFF)
            distance_cache[(origin, dest)] = local.randint(200, 2800)
        return distance_cache[(origin, dest)]

    flights = {}
    for index in range(max(30, n_rows // 5)):
        flight_number = f"F{index:04d}"
        origin = rng.choice(airports)
        dest = rng.choice([airport for airport in airports if airport != origin])
        flight_distance = distance(origin, dest)
        # All times live on a one-hour grid so that departure and arrival
        # times (and actual vs scheduled durations) share enough values for
        # the cross-attribute predicates of the golden DCs even on small
        # generated instances (the 30% shared-values rule).
        scheduled = max(60, ((flight_distance // 8 + 40) // 60) * 60)
        elapsed = max(60, scheduled - 60 * rng.randint(0, 1))
        dep_time = 60 * rng.randint(5, max(6, (1380 - scheduled) // 60))
        arr_time = dep_time + elapsed
        flights[flight_number] = (
            rng.choice(airlines), origin, dest, flight_distance,
            dep_time, arr_time, elapsed, scheduled,
        )
    flight_numbers = list(flights)

    rows = []
    for _ in range(n_rows):
        flight_number = rng.choice(flight_numbers)
        airline, origin, dest, flight_distance, dep, arr, elapsed, scheduled = flights[flight_number]
        rows.append({
            "Flight": flight_number,
            "Airline": airline,
            "Origin": origin,
            "Dest": dest,
            "OriginState": airport_state[origin],
            "DestState": airport_state[dest],
            "DepTime": dep,
            "ArrTime": arr,
            "Elapsed": elapsed,
            "Scheduled": scheduled,
            "Distance": flight_distance,
        })
    relation = Relation.from_records("flight", rows)
    return Dataset("flight", relation, golden_dcs("flight"),
                   "scheduled flights with times and distances", seed)


def generate_voter(n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Synthetic NCVoter dataset: voter registrations."""
    n_rows = n_rows or DEFAULT_ROWS["voter"]
    rng = random.Random(seed)
    reference_year = 2019
    county_state = {}
    for index, state in enumerate(_STATES[:10]):
        for local in range(3):
            county_state[f"{state}_County_{local}"] = state
    counties = list(county_state)
    zip_info = {}
    zip_base = 27000
    for county in counties:
        for _ in range(3):
            zip_code = zip_base
            zip_base += rng.randint(2, 5)
            zip_info[zip_code] = county
    zip_codes = list(zip_info)

    voters = {}
    for voter_id in range(500000, 500000 + max(20, int(n_rows * 0.8))):
        birth_year = rng.randint(1930, reference_year - 18)
        zip_code = rng.choice(zip_codes)
        voters[voter_id] = (
            rng.choice(_FIRST_NAMES),
            rng.choice(_LAST_NAMES),
            rng.choice(["M", "F"]),
            birth_year,
            reference_year - birth_year,
            zip_code,
            rng.choice(["Active", "Inactive"]),
            rng.randint(birth_year + 18, reference_year),
        )
    voter_ids = list(voters)

    rows = []
    for _ in range(n_rows):
        voter_id = rng.choice(voter_ids)
        first, last, gender, birth_year, age, zip_code, status, reg_year = voters[voter_id]
        county = zip_info[zip_code]
        rows.append({
            "VoterId": voter_id,
            "FirstName": first,
            "LastName": last,
            "Gender": gender,
            "Age": age,
            "BirthYear": birth_year,
            "RegYear": reg_year,
            "County": county,
            "State": county_state[county],
            "Zip": zip_code,
            "Status": status,
        })
    relation = Relation.from_records("voter", rows)
    return Dataset("voter", relation, golden_dcs("voter"),
                   "voter registration records", seed)


_GENERATORS: dict[str, Callable[..., Dataset]] = {
    "tax": generate_tax,
    "stock": generate_stock,
    "hospital": generate_hospital,
    "food": generate_food,
    "airport": generate_airport,
    "adult": generate_adult,
    "flight": generate_flight,
    "voter": generate_voter,
}


def generate_dataset(name: str, n_rows: int | None = None, seed: int = 0) -> Dataset:
    """Generate one of the eight datasets by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {sorted(_GENERATORS)}"
        ) from None
    return generator(n_rows=n_rows, seed=seed)


def generate_all_datasets(scale: float = 1.0, seed: int = 0) -> dict[str, Dataset]:
    """Generate every dataset, optionally scaling the default row counts."""
    datasets = {}
    for name in DATASET_NAMES:
        rows = max(20, int(DEFAULT_ROWS[name] * scale))
        datasets[name] = generate_dataset(name, n_rows=rows, seed=seed)
    return datasets
