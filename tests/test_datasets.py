"""Tests for the synthetic dataset generators and their golden DCs."""

from __future__ import annotations

import pytest

from repro.core.predicate_space import build_predicate_space
from repro.data.datasets import DATASET_NAMES, DEFAULT_ROWS, generate_all_datasets, generate_dataset
from repro.data.golden import GOLDEN_DCS, golden_dcs

#: Golden DC counts reported in Table 4 of the paper.
EXPECTED_GOLDEN_COUNTS = {
    "tax": 9, "stock": 6, "hospital": 7, "food": 10,
    "airport": 9, "adult": 3, "flight": 13, "voter": 12,
}

#: Small row count keeping the exhaustive golden-DC validation fast.
TEST_ROWS = 60


@pytest.fixture(scope="module", params=DATASET_NAMES)
def dataset(request):
    return generate_dataset(request.param, n_rows=TEST_ROWS, seed=5)


class TestGenerators:
    def test_row_and_golden_counts(self, dataset):
        assert dataset.n_rows == TEST_ROWS
        assert dataset.n_golden == EXPECTED_GOLDEN_COUNTS[dataset.name]

    def test_generation_is_deterministic(self, dataset):
        again = generate_dataset(dataset.name, n_rows=TEST_ROWS, seed=5)
        assert list(again.relation.rows()) == list(dataset.relation.rows())

    def test_different_seeds_differ(self, dataset):
        other = generate_dataset(dataset.name, n_rows=TEST_ROWS, seed=6)
        assert list(other.relation.rows()) != list(dataset.relation.rows())

    def test_golden_dcs_hold_exactly_on_clean_data(self, dataset):
        for constraint in dataset.golden:
            assert constraint.violation_count(dataset.relation) == 0, str(constraint)

    def test_golden_predicates_exist_in_predicate_space(self, dataset):
        space = build_predicate_space(dataset.relation)
        for constraint in dataset.golden:
            for predicate in constraint.predicates:
                assert predicate in space, f"{dataset.name}: {predicate}"

    def test_golden_dcs_are_nontrivial(self, dataset):
        assert all(not constraint.is_trivial() for constraint in dataset.golden)


class TestRegistry:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            generate_dataset("nope")
        with pytest.raises(KeyError):
            golden_dcs("nope")

    def test_all_datasets_have_golden_dcs(self):
        assert set(GOLDEN_DCS) == set(DATASET_NAMES)

    def test_default_rows_ordering_follows_table_4(self):
        assert DEFAULT_ROWS["tax"] >= max(DEFAULT_ROWS[name] for name in DATASET_NAMES)
        assert DEFAULT_ROWS["adult"] <= min(DEFAULT_ROWS[name] for name in DATASET_NAMES)

    def test_generate_all_datasets_scaled(self):
        datasets = generate_all_datasets(scale=0.1, seed=1)
        assert set(datasets) == set(DATASET_NAMES)
        assert all(ds.n_rows >= 20 for ds in datasets.values())
