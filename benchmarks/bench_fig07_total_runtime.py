"""Figure 7 — total pipeline time: ADCMiner vs DCFinder vs AFASTDC."""

from conftest import report

from repro.experiments import figure7_total_runtime


def test_figure7_total_pipeline_runtime(benchmark, config):
    # The AFASTDC pipeline uses the quadratic pairwise evidence builder, so
    # the figure is reproduced on a reduced scale.
    scaled = config.scaled(0.6)
    rows = benchmark.pedantic(figure7_total_runtime, args=(scaled,), iterations=1, rounds=1)
    report("Figure 7: total running time of the three pipelines (seconds)", rows)
    assert len(rows) == len(scaled.datasets)
    # The paper's headline: the naive AFASTDC evidence construction dominates.
    slower = sum(1 for row in rows if row["afastdc_seconds"] >= row["adcminer_seconds"])
    assert slower >= len(rows) // 2
