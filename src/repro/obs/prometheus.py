"""Prometheus text exposition (format 0.0.4) for a :class:`MetricsRegistry`.

Stdlib-only renderer: ``# HELP`` / ``# TYPE`` headers, escaped label
values, cumulative ``_bucket{le=...}`` series with the implicit ``+Inf``
bound, and ``_sum`` / ``_count`` for histograms.  Families with a label
schema but no children yet still emit their headers, so a scrape always
shows the full metric surface.
"""

from __future__ import annotations

import math

from repro.obs.registry import MetricsRegistry, _HistogramChild

__all__ = ["render_text"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in list(zip(names, values)) + list(extra)
    ]
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_text(registry: MetricsRegistry) -> str:
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family._items():
            if isinstance(child, _HistogramChild):
                snap = child.snapshot()
                for bound, cumulative in snap["buckets"]:  # type: ignore[union-attr]
                    le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                    label_text = _labels_text(
                        family.labelnames, key, extra=(("le", le),)
                    )
                    lines.append(f"{family.name}_bucket{label_text} {cumulative}")
                label_text = _labels_text(family.labelnames, key)
                lines.append(
                    f"{family.name}_sum{label_text} {_format_value(snap['sum'])}"  # type: ignore[arg-type]
                )
                lines.append(f"{family.name}_count{label_text} {snap['count']}")
            else:
                label_text = _labels_text(family.labelnames, key)
                lines.append(
                    f"{family.name}{label_text} {_format_value(child.value)}"  # type: ignore[union-attr]
                )
    return "\n".join(lines) + "\n"
