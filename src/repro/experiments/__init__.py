"""Experiment harness reproducing the paper's tables and figures.

Each experiment is a pure function taking an :class:`ExperimentConfig` and
returning the rows/series behind one table or figure of the paper; the
benchmark suite under ``benchmarks/`` times these functions and prints their
output, and the test suite runs them on tiny configurations to guarantee
they stay executable.
"""

from repro.experiments.config import ExperimentConfig, SMALL_CONFIG, TINY_CONFIG, default_config
from repro.experiments.statistics import table4_statistics
from repro.experiments.runtime import (
    figure6_enum_vs_searchmc,
    figure7_total_runtime,
    figure8_approx_functions,
    figure9_sample_sizes,
    figure10_selection_strategy,
    figure12_miner_sample_sizes,
)
from repro.experiments.quality import figure11_sampling_quality, figure13_estimator_gap
from repro.experiments.qualitative import figure14_grecall, table5_qualitative

__all__ = [
    "ExperimentConfig",
    "SMALL_CONFIG",
    "TINY_CONFIG",
    "default_config",
    "table4_statistics",
    "figure6_enum_vs_searchmc",
    "figure7_total_runtime",
    "figure8_approx_functions",
    "figure9_sample_sizes",
    "figure10_selection_strategy",
    "figure12_miner_sample_sizes",
    "figure11_sampling_quality",
    "figure13_estimator_gap",
    "figure14_grecall",
    "table5_qualitative",
]
