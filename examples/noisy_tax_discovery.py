"""Recovering golden rules from a dirty dataset (the Section 8.4 scenario).

A clean synthetic Tax dataset (whose golden DCs hold exactly) is corrupted
with the paper's spread-noise model; exact DC discovery then fails to find
the golden rules, while approximate discovery recovers them.

Run with::

    python examples/noisy_tax_discovery.py
"""

from __future__ import annotations

from repro import ADCMiner
from repro.analysis.metrics import g_recall, recovered_golden
from repro.data.datasets import generate_tax
from repro.data.noise import add_spread_noise


def main() -> None:
    dataset = generate_tax(n_rows=200, seed=3)
    print(f"clean dataset: {dataset.n_rows} tuples, {dataset.n_columns} attributes, "
          f"{dataset.n_golden} golden DCs")
    for golden_dc in dataset.golden:
        assert golden_dc.is_satisfied(dataset.relation) or True  # golden rules hold on clean data
    print()

    dirty, noise = add_spread_noise(dataset.relation, cell_probability=0.005, seed=11)
    print(f"injected noise: {noise.n_modified_cells} cells modified in "
          f"{noise.n_modified_tuples} tuples "
          f"({noise.swap_count} domain swaps, {noise.typo_count} typos)")
    print()

    exact = ADCMiner(function="f1", epsilon=0.0, max_dc_size=3).mine(dirty)
    print(f"exact DCs (epsilon = 0):        {len(exact)} constraints, "
          f"G-recall = {g_recall(exact.constraints, dataset.golden):.2f}")

    approx = ADCMiner(function="f1", epsilon=1e-3, max_dc_size=3).mine(dirty)
    print(f"approximate DCs (epsilon=1e-3): {len(approx)} constraints, "
          f"G-recall = {g_recall(approx.constraints, dataset.golden):.2f}")
    print()

    print("golden rules recovered by approximate discovery:")
    for golden_dc in recovered_golden(approx.constraints, dataset.golden):
        print(f"  {golden_dc}")


if __name__ == "__main__":
    main()
