"""The stateful evidence store behind streaming appends.

:class:`EvidenceStore` is the long-lived object of the incremental
subsystem: it owns a private snapshot of the relation, the unfinalized
:class:`~repro.engine.partial.PartialEvidenceSet` accumulated so far, and
the fixed predicate space everything is evaluated against.  ``append``
grows the snapshot and folds in only the delta tiles
(:class:`~repro.incremental.delta.DeltaEvidenceBuilder`); ``evidence``
finalizes lazily and caches until the next append; ``remine`` feeds the
finalized word planes straight into
:class:`~repro.core.adc_enum.ADCEnum`.

**Invariant** (property-tested over random append schedules): after any
sequence of appends, ``evidence()`` is bit-identical — words, canonical
order, multiplicities, tuple participation — to a full tiled rebuild on the
concatenated relation with the store's predicate space.  The predicate
space is therefore fixed at construction: re-deriving it from grown data
would change the bit layout under the stored words.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.core.approximation import get_approximation_function
from repro.core.evidence import EvidenceSet
from repro.core.miner import run_enumeration
from repro.core.predicate_space import (
    PredicateSpaceConfig,
    build_predicate_space,
)
from repro.engine.kernel import TileKernel
from repro.engine.scheduler import DEFAULT_MEMORY_BUDGET_BYTES, TileScheduler
from repro.incremental.delta import DeltaEvidenceBuilder
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.registry import get_registry as obs_get_registry

if TYPE_CHECKING:
    from repro.core.adc_enum import DiscoveredADC, EnumerationStatistics, SelectionStrategy
    from repro.core.approximation import ApproximationFunction
    from repro.core.predicate_space import PredicateSpace
    from repro.data.relation import Relation
    from repro.engine.partial import PartialEvidenceSet

#: Signature of an append listener: ``(delta_partial, n_before, n_after)``.
#: The delta partial is already keyed on the grown relation (its ``n_rows``
#: equals ``n_after``).
AppendListener = Callable[["PartialEvidenceSet", int, int], None]


class EvidenceStore:
    """Evidence of a growing relation, maintained one appended batch at a time.

    Parameters
    ----------
    relation:
        Initial relation; a private copy is taken, so the caller's object
        never mutates under appends.
    space:
        Predicate space to evaluate; built from the initial relation with
        ``space_config`` when omitted.  Fixed for the store's lifetime.
    space_config:
        Generation knobs used only when ``space`` is omitted.
    include_participation:
        Whether the ``vios`` tuple-participation structure is maintained
        (required by f2/f3 remining and per-tuple violation scores).
    tile_rows:
        Tile edge of the evidence kernels; ``None`` adapts per build.
    n_workers:
        Process-pool width for the initial build and every delta
        (``1`` = serial in-process fold, no executor overhead).
    cluster:
        Optional :class:`~repro.cluster.coordinator.ClusterCoordinator` or
        :class:`~repro.cluster.local.LocalCluster`: the seed build and
        every appended batch's delta tiles fold over the cluster's workers
        (``n_workers`` is then ignored).  The bit-identity invariant is
        unchanged — cluster folds merge the same tile partials.
    memory_budget_bytes:
        Transient-memory budget driving the adaptive tile edge.
    """

    def __init__(
        self,
        relation: "Relation",
        space: "PredicateSpace | None" = None,
        space_config: PredicateSpaceConfig | None = None,
        include_participation: bool = True,
        tile_rows: int | None = None,
        n_workers: int = 1,
        cluster: object | None = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    ) -> None:
        self._relation = relation.copy()
        self.space = space if space is not None else build_predicate_space(
            self._relation, space_config
        )
        self._builder = DeltaEvidenceBuilder(
            self.space,
            include_participation=include_participation,
            tile_rows=tile_rows,
            n_workers=n_workers,
            cluster=cluster,
            memory_budget_bytes=memory_budget_bytes,
        )
        self._partial = self._builder.full_partial(self._relation)
        self._evidence: EvidenceSet | None = None
        self._generation = 0
        self._append_listeners: list[AppendListener] = []
        self.last_enumeration_statistics: "EnumerationStatistics | None" = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def relation(self) -> "Relation":
        """The store's relation snapshot (treat as read-only)."""
        return self._relation

    @property
    def n_rows(self) -> int:
        """Rows currently in the store."""
        return self._relation.n_rows

    @property
    def generation(self) -> int:
        """Number of appends absorbed since construction."""
        return self._generation

    @property
    def include_participation(self) -> bool:
        """Whether the tuple-participation structure is maintained."""
        return self._builder.include_participation

    @property
    def builder(self) -> DeltaEvidenceBuilder:
        """The delta builder holding the store's construction knobs."""
        return self._builder

    @property
    def recorded_pairs(self) -> int:
        """Ordered pairs covered by the stored partial."""
        return self._partial.recorded_pairs

    @property
    def partial(self) -> "PartialEvidenceSet":
        """The unfinalized partial accumulated so far (treat as read-only).

        Exposed so derived read structures — the serving layer's push-based
        violation counters — can seed themselves from the store's state
        without forcing a finalize.
        """
        return self._partial

    def add_append_listener(self, listener: AppendListener) -> None:
        """Call ``listener(delta, n_before, n_after)`` after every commit.

        Listeners run synchronously inside :meth:`append`, after the grown
        relation and merged partial are swapped in — the delta they receive
        is exactly what was merged, so incrementally-maintained structures
        (push-based violation counters, snapshot caches) can update from
        the delta alone and never drift from the store.  They only fire for
        *committed* appends: a failed append never reaches them.
        """
        self._append_listeners.append(listener)

    def remove_append_listener(self, listener: AppendListener) -> None:
        """Unregister a listener (no-op when it is not registered).

        Replaced read structures — e.g. counters superseded by a new
        constraint set — must detach, or the store keeps updating them
        forever.
        """
        try:
            self._append_listeners.remove(listener)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvidenceStore(rows={self.n_rows}, "
            f"evidences={len(self._partial)}, generation={self._generation})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        rows: "Relation | Iterable[Mapping[str, object]]",
        pre_commit: Callable[[int], None] | None = None,
    ) -> int:
        """Absorb a batch of new rows; returns the number of rows appended.

        Only the new-vs-old rectangles and the new-vs-new square of the pair
        matrix are evaluated (``O(n·m + m²)`` pairs for ``m`` appended to
        ``n``); the stored partial is re-keyed onto the grown relation and
        the delta merged in.  The finalized-evidence cache is invalidated.

        The append is atomic: the grown relation and its delta partial are
        staged on the side and only swapped in once both succeed, so a
        failure anywhere (a dirty value the column type rejects, a broken
        worker pool) leaves the store exactly as it was — safe to fix the
        batch and retry.

        ``pre_commit(n_new)`` is the write-ahead hook: it runs after the
        batch has been validated and its delta computed, but before any
        state is swapped in.  A durability journal writes (and fsyncs) the
        batch record here — if the journal write fails, the append fails
        with the store untouched, so the log never lags the in-memory state
        and the in-memory state never leads the log.
        """
        span = obs_spans.current()
        staged = self._relation.copy()
        n_before = staged.n_rows
        n_new = staged.append_rows(rows)
        if n_new == 0:
            return 0
        fold_start = time.perf_counter()
        delta = self._builder.delta_partial(staged, n_before)
        fold_seconds = time.perf_counter() - fold_start
        obs_metrics.STORE_FOLD_SECONDS.observe_labels(
            self._relation.name, value=fold_seconds
        )
        if span is not None:
            span.add_segment("fold", fold_seconds)
        if pre_commit is not None:
            # The journal hook adds its own "journal_fsync" span segment.
            pre_commit(n_new)
        commit_start = time.perf_counter()
        # Commit point: nothing below computes, so nothing below fails.
        self._relation = staged
        self._partial.rebase_rows(staged.n_rows)
        self._partial.merge(delta)
        self._evidence = None
        self._generation += 1
        for listener in self._append_listeners:
            listener(delta, n_before, staged.n_rows)
        obs_metrics.STORE_APPENDED_ROWS.inc_labels(self._relation.name, amount=n_new)
        if span is not None:
            span.add_segment("commit", time.perf_counter() - commit_start)
        return n_new

    @classmethod
    def from_state(
        cls,
        relation: "Relation",
        space: "PredicateSpace",
        partial: "PartialEvidenceSet",
        generation: int = 0,
        tile_rows: int | None = None,
        n_workers: int = 1,
        cluster: object | None = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    ) -> "EvidenceStore":
        """Reassemble a store from externally persisted state.

        This is the recovery constructor of the durability layer
        (:mod:`repro.durability`): ``relation`` and ``partial`` come from a
        snapshot, ``space`` must be rebuilt from the same seed rows the
        original store was born with (the space is fixed at store birth —
        re-deriving it from grown data would change the bit layout under the
        stored words).  No evidence is computed; the partial is adopted
        as-is and finalizes lazily like any other store.
        """
        if partial.n_rows != relation.n_rows:
            raise ValueError(
                f"partial keyed on {partial.n_rows} rows cannot adopt a "
                f"{relation.n_rows}-row relation"
            )
        store = object.__new__(cls)
        store._relation = relation.copy()
        store.space = space
        store._builder = DeltaEvidenceBuilder(
            space,
            include_participation=partial.include_participation,
            tile_rows=tile_rows,
            n_workers=n_workers,
            cluster=cluster,
            memory_budget_bytes=memory_budget_bytes,
        )
        store._partial = partial
        store._evidence = None
        store._generation = int(generation)
        store._append_listeners = []
        store.last_enumeration_statistics = None
        return store

    def clone(self) -> "EvidenceStore":
        """An independent store with the same state (cheap, copy-on-append).

        The partial's chunk arrays are shared (they are never mutated in
        place), so cloning costs only the dict/list copies — what the
        incremental benchmark uses to replay different batch sizes against
        one seed build.
        """
        duplicate = object.__new__(EvidenceStore)
        # Share everything by default (space, builder, caches, and whatever
        # attributes future versions add), then replace the two pieces of
        # state that appends mutate.
        duplicate.__dict__.update(self.__dict__)
        duplicate._relation = self._relation.copy()
        duplicate._partial = self._partial.copy()
        # Listeners watch *this* store's commits; the clone starts clean so
        # its appends cannot feed counters maintained for the original.
        duplicate._append_listeners = []
        duplicate.last_enumeration_statistics = None
        return duplicate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def evidence(self) -> EvidenceSet:
        """The finalized evidence set of the current relation (cached).

        Finalization resolves the accumulated chunks into the canonical
        lexicographic word order; the result is cached until the next
        :meth:`append` invalidates it.
        """
        if self._evidence is None:
            self._evidence = self._partial.finalize(self.space)
        return self._evidence

    def remine(
        self,
        epsilon: float,
        function: "ApproximationFunction | str" = "f1",
        selection: "SelectionStrategy" = "max",
        max_dc_size: int | None = None,
    ) -> list["DiscoveredADC"]:
        """Re-enumerate minimal ADCs over the store's current evidence.

        The cached word planes go straight into
        :class:`~repro.core.adc_enum.ADCEnum` — no evidence rebuild, no
        representation change.  Enumeration statistics of the run are kept
        in :attr:`last_enumeration_statistics`.
        """
        if isinstance(function, str):
            function = get_approximation_function(function)
        label = self._relation.name
        span = obs_spans.current()
        obs_metrics.MINING_RUNS.inc_labels(label)

        def publish(stats: "EnumerationStatistics") -> None:
            """Export the live counters; called every ~8k search nodes."""
            obs_metrics.MINING_NODES_VISITED.set_labels(
                label, value=stats.recursive_calls
            )
            obs_metrics.MINING_NODES_PER_SECOND.set_labels(
                label, value=stats.nodes_per_second
            )
            obs_metrics.MINING_MAX_STACK_DEPTH.set_labels(
                label, value=stats.extra.get("max_stack_depth", 0.0)
            )

        finalize_start = time.perf_counter()
        evidence = self.evidence()
        finalize_seconds = time.perf_counter() - finalize_start
        if span is not None:
            span.add_segment("finalize", finalize_seconds)
        enumerate_start = time.perf_counter()
        adcs, statistics = run_enumeration(
            evidence,
            function,
            epsilon,
            selection=selection,
            max_dc_size=max_dc_size,
            progress=publish if obs_get_registry().enabled else None,
        )
        enumerate_seconds = time.perf_counter() - enumerate_start
        if span is not None:
            span.add_segment("enumerate", enumerate_seconds)
        publish(statistics)
        obs_metrics.MINING_SECONDS.observe_labels(label, value=enumerate_seconds)
        self.last_enumeration_statistics = statistics
        return adcs

    # ------------------------------------------------------------------
    # Replay support (violation serving)
    # ------------------------------------------------------------------
    def replay_kernel(self) -> TileKernel:
        """A participation-free kernel over the current rows, for tile replay."""
        return self._builder.kernel(self._relation, include_participation=False)

    def replay_scheduler(self) -> TileScheduler:
        """The full-grid schedule matching :meth:`replay_kernel`."""
        return TileScheduler(
            self.n_rows, tile_rows=self._builder.tile_edge(self.n_rows)
        )

    def probe_relation(
        self, rows: "Relation | Iterable[Mapping[str, object]]"
    ) -> tuple["Relation", int]:
        """A *hypothetical* relation with ``rows`` appended, and the old size.

        The store itself is untouched — this is what ``check_batch`` uses to
        evaluate incoming rows before admitting them.
        """
        probe = self._relation.copy()
        n_before = probe.n_rows
        probe.append_rows(rows)
        return probe, n_before
