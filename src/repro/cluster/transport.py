"""Message transports: length-prefixed pickle frames.

Every link between the coordinator and a worker speaks the same trivial
wire protocol: a frame is an 8-byte big-endian payload length followed by a
pickled Python object.  :class:`Transport` owns the pickle step and the
per-connection byte/frame counters (what the cluster benchmark reads to
compare pipe-returned partials against shared-memory handles); subclasses
only move raw payload bytes.

Two transports are provided:

* :class:`LocalTransport` — an in-process queue pair.  It still pickles
  every message, so it exercises exactly the serialization path of the
  socket transport (anything unpicklable fails in tests, not on a remote
  deployment) and counts the same bytes.
* :class:`SocketTransport` — a connected TCP (or Unix) socket.  A peer
  death surfaces as :class:`TransportClosed` on the next read or write,
  which is what the coordinator's failure detection keys off.
"""

from __future__ import annotations

import pickle
import queue
import select
import socket
import struct
import time

_HEADER = struct.Struct(">Q")


def _poll_ready(sock: socket.socket, write: bool, timeout: float | None) -> bool:
    """Wait until ``sock`` is ready for one I/O direction; False on timeout.

    ``select.poll`` where available (everywhere but Windows): unlike
    ``select.select`` it has no FD_SETSIZE cap, which matters in a
    coordinator holding a thousand worker sockets plus ordinary files.
    """
    if hasattr(select, "poll"):
        poller = select.poll()
        poller.register(sock, select.POLLOUT if write else select.POLLIN)
        return bool(poller.poll(None if timeout is None else max(0.0, timeout) * 1000))
    readable, writable, _ = select.select(
        [] if write else [sock], [sock] if write else [], [], timeout
    )
    return bool(readable or writable)

#: Queue sentinel announcing the peer closed its end of a local link.
_CLOSED = object()


class TransportError(RuntimeError):
    """Base class of transport failures."""


class TransportClosed(TransportError):
    """The peer closed the link (clean shutdown or process death)."""


class TransportTimeout(TransportError):
    """No complete frame arrived within the requested timeout."""


class Transport:
    """Framed-pickle message link; subclasses move raw payloads.

    Besides the cumulative byte/frame counters, every send and receive
    records how its latest frame split between (de)serialization and the
    raw payload move (``last_serialize_seconds`` / ``last_send_seconds`` /
    ``last_unpickle_seconds``, plus the frame's payload size).  That is
    what lets a traced cluster worker report disjoint ``serialize`` and
    ``send`` segments for a result frame *after* shipping it — the span
    itself travels in a separate trailing frame.  The cost is four
    ``perf_counter`` reads per frame, noise next to a pickle round-trip.
    """

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.last_serialize_seconds = 0.0
        self.last_send_seconds = 0.0
        self.last_send_bytes = 0
        self.last_unpickle_seconds = 0.0
        self.last_recv_bytes = 0

    def send(self, message: object) -> None:
        """Pickle ``message`` into one frame and ship it."""
        start = time.perf_counter()
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        serialized = time.perf_counter()
        self._send_payload(payload)
        self.last_serialize_seconds = serialized - start
        self.last_send_seconds = time.perf_counter() - serialized
        self.last_send_bytes = len(payload)
        self.bytes_sent += len(payload)
        self.frames_sent += 1

    def recv(self, timeout: float | None = None) -> object:
        """Receive one frame and unpickle it.

        ``timeout=None`` blocks until a frame arrives or the link dies;
        otherwise :class:`TransportTimeout` is raised after ``timeout``
        seconds without a *complete* frame (partial frames stay buffered).
        """
        payload = self._recv_payload(timeout)
        self.bytes_received += len(payload)
        self.frames_received += 1
        self.last_recv_bytes = len(payload)
        start = time.perf_counter()
        message = pickle.loads(payload)
        self.last_unpickle_seconds = time.perf_counter() - start
        return message

    def close(self) -> None:
        raise NotImplementedError

    def _send_payload(self, payload: bytes) -> None:
        raise NotImplementedError

    def _recv_payload(self, timeout: float | None) -> bytes:
        raise NotImplementedError


class LocalTransport(Transport):
    """In-process endpoint of a queue pair (build with :meth:`pair`)."""

    def __init__(self, outbox: "queue.Queue[object]", inbox: "queue.Queue[object]") -> None:
        super().__init__()
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False

    @classmethod
    def pair(cls) -> tuple["LocalTransport", "LocalTransport"]:
        """Two connected endpoints; what one sends the other receives."""
        a_to_b: "queue.Queue[object]" = queue.Queue()
        b_to_a: "queue.Queue[object]" = queue.Queue()
        return cls(a_to_b, b_to_a), cls(b_to_a, a_to_b)

    def _send_payload(self, payload: bytes) -> None:
        if self._closed:
            raise TransportClosed("transport is closed")
        self._outbox.put(payload)

    def _recv_payload(self, timeout: float | None) -> bytes:
        if self._closed:
            raise TransportClosed("transport is closed")
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise TransportTimeout(f"no frame within {timeout} seconds") from None
        if item is _CLOSED:
            # Keep the sentinel so every subsequent recv also reports EOF.
            self._inbox.put(_CLOSED)
            raise TransportClosed("peer closed the transport")
        return item  # type: ignore[return-value]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSED)


class SocketTransport(Transport):
    """Framed-pickle link over a connected stream socket.

    ``send_timeout`` bounds how long a frame may sit blocked *making no
    progress* on a full send buffer (a frozen or blackholed peer never
    drains it; a blocking send would hang the sender forever).  Any bytes
    accepted reset the clock, so a slow-but-draining link is never killed
    no matter how large the frame.  Overrunning it counts as a dead link —
    the stream may hold a partial frame by then, so the connection is
    unusable either way.

    The socket runs non-blocking with ``select`` pacing both directions:
    a blocking ``send()`` can stall until its *entire* chunk fits in the
    peer buffer (so no writability check could bound it), and per-socket
    ``settimeout`` state would be shared between the coordinator's reader
    thread and the scheduler thread sending on the same socket.
    """

    def __init__(self, sock: socket.socket, send_timeout: float | None = None) -> None:
        super().__init__()
        self._sock = sock
        self._buffer = bytearray()
        self.send_timeout = send_timeout
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # Unix sockets / socketpairs have no Nagle to disable.

    def _await_ready(
        self, write: bool, deadline: float | None, on_deadline: TransportError
    ) -> None:
        """Pace one non-blocking I/O direction; raise ``on_deadline`` late."""
        while True:
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise on_deadline
            try:
                if _poll_ready(self._sock, write, remaining):
                    return
            except (OSError, ValueError) as error:
                raise TransportClosed(f"socket closed: {error}") from error

    def _send_payload(self, payload: bytes) -> None:
        view = memoryview(_HEADER.pack(len(payload)) + payload)
        deadline = (
            None if self.send_timeout is None
            else time.monotonic() + self.send_timeout
        )
        on_deadline = TransportClosed(
            f"send blocked past {self.send_timeout} seconds "
            "(peer frozen or link blackholed)"
        )
        # I/O first, wait only on BlockingIOError: polling before every
        # chunk would double the syscalls on the bulk-transfer hot path.
        while view:
            try:
                sent = self._sock.send(view)
            except (BlockingIOError, InterruptedError):
                self._await_ready(True, deadline, on_deadline)
                continue
            except (OSError, ValueError) as error:
                raise TransportClosed(f"send failed: {error}") from error
            view = view[sent:]
            if sent and deadline is not None:
                # Progress resets the clock: the bound is on a peer that
                # *stops* draining, not on total frame size over a slow link.
                deadline = time.monotonic() + self.send_timeout

    def _fill(self, target: int, timeout: float | None) -> None:
        """Grow the receive buffer to ``target`` bytes (partials persist)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        on_deadline = TransportTimeout(f"no frame within {timeout} seconds")
        while len(self._buffer) < target:
            try:
                chunk = self._sock.recv(max(65536, target - len(self._buffer)))
            except (BlockingIOError, InterruptedError):
                self._await_ready(False, deadline, on_deadline)
                continue
            except (OSError, ValueError) as error:
                raise TransportClosed(f"recv failed: {error}") from error
            if not chunk:
                raise TransportClosed("peer closed the socket")
            self._buffer.extend(chunk)

    def _recv_payload(self, timeout: float | None) -> bytes:
        self._fill(_HEADER.size, timeout)
        (length,) = _HEADER.unpack(bytes(self._buffer[: _HEADER.size]))
        self._fill(_HEADER.size + length, timeout)
        payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
        del self._buffer[: _HEADER.size + length]
        return payload

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``host:port`` string (the worker CLI's ``--connect`` form)."""
    host, _, port_text = address.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"expected host:port, got {address!r}")
    return host, int(port_text)


def listen_socket(host: str = "127.0.0.1", port: int = 0) -> socket.socket:
    """A listening TCP socket (``port=0`` lets the OS pick a free one)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen()
    return sock


def connect_socket(
    host: str,
    port: int,
    timeout: float | None = 30.0,
    send_timeout: float | None = None,
) -> SocketTransport:
    """Connect to a listening coordinator and wrap the socket.

    ``send_timeout`` is the no-progress send bound of the resulting
    transport — without one, a worker streaming a result to a frozen
    coordinator blocks forever.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return SocketTransport(sock, send_timeout=send_timeout)
