"""Tests for the typed relation layer."""

from __future__ import annotations

import pytest

from repro.data.relation import Relation, running_example
from repro.data.types import ColumnType


@pytest.fixture
def people() -> Relation:
    return Relation(
        "people",
        {
            "name": ["ann", "bob", "cat", "dan"],
            "age": [30, 25, 30, 41],
            "score": [1.5, 2.0, 2.5, 3.0],
        },
    )


class TestConstruction:
    def test_row_and_column_counts(self, people):
        assert people.n_rows == 4
        assert people.n_columns == 3
        assert len(people) == 4

    def test_column_types_inferred(self, people):
        assert people.column_type("name") is ColumnType.STRING
        assert people.column_type("age") is ColumnType.INTEGER
        assert people.column_type("score") is ColumnType.FLOAT

    def test_explicit_types_override_inference(self):
        relation = Relation("r", {"x": [1, 2]}, types={"x": ColumnType.STRING})
        assert relation.column_type("x") is ColumnType.STRING
        assert relation.value(0, "x") == "1"

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            Relation("bad", {"a": [1, 2], "b": [1]})

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Relation("bad", {})

    def test_unknown_column_raises(self, people):
        with pytest.raises(KeyError):
            people.column("missing")


class TestRowAccess:
    def test_row_returns_dict(self, people):
        assert people.row(1) == {"name": "bob", "age": 25, "score": 2.0}

    def test_row_out_of_range(self, people):
        with pytest.raises(IndexError):
            people.row(10)

    def test_rows_iterates_all(self, people):
        assert len(list(people.rows())) == 4

    def test_value(self, people):
        assert people.value(2, "name") == "cat"


class TestDerivedRelations:
    def test_project(self, people):
        projected = people.project(["name", "age"])
        assert projected.column_names == ["name", "age"]
        assert projected.n_rows == 4

    def test_take_preserves_order(self, people):
        taken = people.take([2, 0])
        assert taken.value(0, "name") == "cat"
        assert taken.value(1, "name") == "ann"

    def test_head(self, people):
        assert people.head(2).n_rows == 2

    def test_sample_fraction_one_returns_same_object(self, people):
        assert people.sample(1.0) is people

    def test_sample_is_deterministic_with_seed(self, people):
        first = people.sample(0.5, seed=3)
        second = people.sample(0.5, seed=3)
        assert [r for r in first.rows()] == [r for r in second.rows()]

    def test_sample_rejects_non_positive_fraction(self, people):
        with pytest.raises(ValueError):
            people.sample(0.0)

    def test_copy_is_independent(self, people):
        copy = people.copy()
        copy.column("age").values[0] = 99
        assert people.value(0, "age") == 30

    def test_with_values_replaces_column(self, people):
        new_ages = people.column("age").values.copy()
        new_ages[0] = 99
        updated = people.with_values("age", new_ages)
        assert updated.value(0, "age") == 99
        assert people.value(0, "age") == 30


class TestAppendRows:
    def test_append_records_grows_in_place(self, people):
        added = people.append_rows([
            {"name": "eve", "age": 22, "score": 4.5},
            {"name": "fox", "age": 63, "score": 0.5},
        ])
        assert added == 2
        assert people.n_rows == 6
        assert people.value(4, "name") == "eve"
        assert people.value(5, "age") == 63
        assert people.column_type("age") is ColumnType.INTEGER

    def test_append_relation_checks_schema(self, people):
        batch = Relation(
            "batch", {"name": ["gil"], "age": [18], "score": [9.0]}
        )
        assert people.append_rows(batch) == 1
        assert people.n_rows == 5
        mismatched = Relation("bad", {"name": ["x"], "age": [1]})
        with pytest.raises(ValueError):
            people.append_rows(mismatched)

    def test_append_missing_column_rejected(self, people):
        with pytest.raises(ValueError):
            people.append_rows([{"name": "no-age", "score": 1.0}])

    def test_append_coerces_to_existing_types(self, people):
        people.append_rows([{"name": "eve", "age": "33", "score": "4.25"}])
        assert people.value(4, "age") == 33
        assert people.value(4, "score") == 4.25

    def test_empty_append_is_noop(self, people):
        assert people.append_rows([]) == 0
        assert people.n_rows == 4

    def test_failed_append_leaves_the_relation_untouched(self, people):
        with pytest.raises(ValueError):
            people.append_rows([{"name": "bad", "age": "not-a-number", "score": 1.0}])
        assert people.n_rows == 4
        assert all(len(column) == 4 for column in people.columns)
        assert people.value(3, "name") == "dan"

    def test_string_codes_stay_stable_across_appends(self, people):
        before = people.string_codes("name", "name")[0].copy()
        people.append_rows([
            {"name": "ann", "age": 1, "score": 1.0},   # existing value
            {"name": "aaa", "age": 2, "score": 2.0},   # sorts before all
        ])
        after = people.string_codes("name", "name")[0]
        assert (after[:4] == before).all()
        assert after[4] == before[0]       # "ann" reuses ann's code
        assert after[5] == before.max() + 1  # new value extends the code range

    def test_pair_codes_stay_comparable_after_append(self):
        relation = Relation(
            "r", {"a": ["x", "y", "z"], "b": ["y", "q", "x"]}
        )
        relation.string_codes("a", "b")
        relation.append_rows([{"a": "q", "b": "z"}])
        left, right = relation.string_codes("a", "b")
        a_values = [str(v) for v in relation.column("a").values.tolist()]
        b_values = [str(v) for v in relation.column("b").values.tolist()]
        for i in range(len(a_values)):
            for j in range(len(b_values)):
                assert (left[i] == right[j]) == (a_values[i] == b_values[j])

    def test_copies_are_isolated_from_appends(self, people):
        people.string_codes("name", "name")
        duplicate = people.copy()
        people.append_rows([{"name": "eve", "age": 1, "score": 1.0}])
        assert duplicate.n_rows == 4
        assert len(duplicate.string_codes("name", "name")[0]) == 4
        duplicate.append_rows([{"name": "gil", "age": 2, "score": 2.0}])
        assert people.n_rows == 5
        assert people.value(4, "name") == "eve"
        assert duplicate.value(4, "name") == "gil"


class TestIO:
    def test_csv_round_trip(self, tmp_path, people):
        path = tmp_path / "people.csv"
        people.to_csv(path)
        loaded = Relation.from_csv(path)
        assert loaded.n_rows == people.n_rows
        assert loaded.column_names == people.column_names
        assert loaded.column_type("age") is ColumnType.INTEGER

    def test_from_records(self):
        relation = Relation.from_records("r", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert relation.n_rows == 2
        assert relation.column_type("a") is ColumnType.INTEGER

    def test_from_records_empty_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_records("r", [])


class TestRunningExample:
    def test_shape_matches_table_1(self):
        relation = running_example()
        assert relation.n_rows == 15
        assert relation.column_names == ["Name", "State", "Zip", "Income", "Tax"]

    def test_types(self):
        relation = running_example()
        assert relation.column_type("State") is ColumnType.STRING
        assert relation.column_type("Income") is ColumnType.INTEGER

    def test_describe_mentions_all_columns(self):
        text = running_example().describe()
        for column in ["Name", "State", "Zip", "Income", "Tax"]:
            assert column in text
