"""Versioned, checksummed snapshot files for store compaction.

A snapshot bounds recovery time: instead of replaying every append since
birth, recovery loads the newest valid snapshot and replays only the WAL
tail behind it.  The file layout is a magic header followed by CRC32-framed
sections::

    [magic 8B] [u32 len][u32 crc][section 0: JSON meta]
               [u32 len][u32 crc][section 1: .npy blob] ...

Section 0 is a JSON object describing the store (relation rows and types,
seed-row count, declared constraints, sequence watermark, and the ordered
``arrays`` name list); each following section is one ``numpy.save`` blob —
the compacted :meth:`~repro.engine.partial.PartialEvidenceSet.state_arrays`
output, which finalizes bit-identically to the partial it compacted.

Writes are atomic: everything goes to a ``*.tmp`` sibling, which is
flushed, fsynced, and ``os.replace``-d over the target, then the directory
is fsynced.  A crash anywhere before the rename leaves at most a stray tmp
file; a crash after it leaves both the new snapshot and the old WAL, which
the sequence watermark makes harmless (replay skips records the snapshot
already reflects).  Corruption anywhere — torn section, flipped bit — is
detected by CRC and surfaces as :class:`SnapshotError`, and recovery falls
back to the next-older version.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.durability.wal import _fsync_directory

if TYPE_CHECKING:
    from repro.durability.faults import FaultSchedule

SNAPSHOT_MAGIC = b"RPSNAP\x00\x01"
_SECTION = struct.Struct(">II")  # section length, crc32
SNAPSHOT_PATTERN = "snapshot-*.snap"


class SnapshotError(RuntimeError):
    """The snapshot file is unreadable, corrupt, or torn."""


def snapshot_path(directory: str | os.PathLike, version: int) -> Path:
    """The canonical file name of snapshot ``version`` in ``directory``."""
    return Path(directory) / f"snapshot-{version:08d}.snap"


def snapshot_versions(directory: str | os.PathLike) -> list[int]:
    """Snapshot versions present in ``directory``, oldest first."""
    versions = []
    for path in Path(directory).glob(SNAPSHOT_PATTERN):
        stem = path.stem  # snapshot-XXXXXXXX
        try:
            versions.append(int(stem.split("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return sorted(versions)


def write_snapshot(
    path: str | os.PathLike,
    meta: dict,
    arrays: dict[str, np.ndarray],
    faults: "FaultSchedule | None" = None,
) -> None:
    """Atomically write ``meta`` + ``arrays`` as a snapshot file.

    ``meta`` gains an ``"arrays"`` key recording the section order.  Fault
    points: ``snapshot_write`` (per section, may crash mid-file — only the
    tmp file is hurt) and ``snapshot_rename`` (crash before the rename —
    the old snapshot generation stays live).
    """
    path = Path(path)
    names = sorted(arrays)
    meta = dict(meta, arrays=names)
    # No sort_keys: key order is semantic — relation row dicts carry the
    # column order the predicate space's bit layout is derived from.
    sections = [json.dumps(meta).encode("utf-8")]
    for name in names:
        blob = io.BytesIO()
        np.save(blob, np.ascontiguousarray(arrays[name]), allow_pickle=False)
        sections.append(blob.getvalue())

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as out:
        out.write(SNAPSHOT_MAGIC)
        for section in sections:
            if faults is not None and faults.at("snapshot_write", size=len(section)).crash:
                out.flush()
                from repro.durability.faults import SimulatedCrash

                raise SimulatedCrash(f"crash while writing {tmp.name}")
            out.write(_SECTION.pack(len(section), zlib.crc32(section)))
            out.write(section)
        out.flush()
        os.fsync(out.fileno())
    if faults is not None and faults.at("snapshot_rename").crash:
        from repro.durability.faults import SimulatedCrash

        raise SimulatedCrash(f"crash before renaming {tmp.name}")
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def load_snapshot(path: str | os.PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Load and fully verify a snapshot; raises :class:`SnapshotError`."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise SnapshotError(f"cannot read {path}: {error}") from error
    if not raw.startswith(SNAPSHOT_MAGIC):
        raise SnapshotError(f"{path} is not a snapshot file")
    sections: list[bytes] = []
    offset = len(SNAPSHOT_MAGIC)
    while offset < len(raw):
        if offset + _SECTION.size > len(raw):
            raise SnapshotError(f"{path}: torn section header")
        length, crc = _SECTION.unpack_from(raw, offset)
        offset += _SECTION.size
        section = raw[offset : offset + length]
        if len(section) < length or zlib.crc32(section) != crc:
            raise SnapshotError(f"{path}: section {len(sections)} fails checksum")
        sections.append(section)
        offset += length
    if not sections:
        raise SnapshotError(f"{path}: missing meta section")
    try:
        meta = json.loads(sections[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotError(f"{path}: bad meta section: {error}") from error
    names = meta.get("arrays", [])
    if len(names) != len(sections) - 1:
        raise SnapshotError(
            f"{path}: meta lists {len(names)} arrays, file has {len(sections) - 1}"
        )
    arrays: dict[str, np.ndarray] = {}
    for name, blob in zip(names, sections[1:]):
        try:
            arrays[name] = np.load(io.BytesIO(blob), allow_pickle=False)
        except ValueError as error:
            raise SnapshotError(f"{path}: array {name!r} unreadable: {error}") from error
    return meta, arrays
